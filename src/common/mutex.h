// Annotated mutex wrappers: std::mutex / std::shared_mutex carry no
// thread-safety attributes in libstdc++, so capability analysis cannot
// track them. These zero-overhead wrappers (one inline call layer, no
// state beyond the wrapped lock) are the lockable capabilities that
// every HOPE_GUARDED_BY / HOPE_REQUIRES annotation in the tree names,
// plus the RAII lock types the analysis understands.
//
//   Mutex / MutexLock        — std::mutex + std::lock_guard shape.
//   Mutex / UniqueLock       — std::unique_lock shape; exposes native()
//                              for std::condition_variable::wait (the
//                              cv re-acquires the same underlying
//                              std::mutex, so the capability stays
//                              logically held across the wait).
//   SharedMutex / WriterLock / ReaderLock
//                            — std::shared_mutex + exclusive/shared
//                              RAII locks.
//
// Condition-variable caveat: clang analyzes lambda bodies with an empty
// lock set, so `cv.wait(lk, [&]{ return guarded_field; })` is reported
// as an unguarded read even though the lock is held when the predicate
// runs. Code using these wrappers writes the wait loop explicitly:
//
//   UniqueLock lk(mu_);
//   while (!guarded_field_) cv_.wait(lk.native());
#pragma once

#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace hope {

class HOPE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() HOPE_ACQUIRE() { mu_.lock(); }
  void Unlock() HOPE_RELEASE() { mu_.unlock(); }
  bool TryLock() HOPE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped std::mutex, for std::condition_variable interop only.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

class HOPE_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() HOPE_ACQUIRE() { mu_.lock(); }
  void Unlock() HOPE_RELEASE() { mu_.unlock(); }
  bool TryLock() HOPE_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void LockShared() HOPE_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() HOPE_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() HOPE_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

  /// The wrapped std::shared_mutex, for lock-composition interop only
  /// (e.g. holding every shard's lock in a vector of RAII locks, which
  /// the analysis cannot track — such sites are NO_TSA with a comment).
  std::shared_mutex& native() { return mu_; }

 private:
  std::shared_mutex mu_;
};

/// std::lock_guard over Mutex.
class HOPE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HOPE_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  /// Adopts a lock already held (e.g. after a successful TryLock).
  MutexLock(Mutex& mu, std::adopt_lock_t) HOPE_REQUIRES(mu) : mu_(mu) {}
  ~MutexLock() HOPE_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock over Mutex, for condition-variable waits and
/// explicit Unlock/Lock spans. Must hold the lock at destruction-time
/// scope exit balance (native() handles cv re-acquisition invisibly —
/// the capability is held before and after each wait).
class HOPE_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) HOPE_ACQUIRE(mu)
      : lk_(mu.native()), mu_(mu) {}
  ~UniqueLock() HOPE_RELEASE() {}

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void Lock() HOPE_ACQUIRE() { lk_.lock(); }
  void Unlock() HOPE_RELEASE() { lk_.unlock(); }

  /// For std::condition_variable::wait / wait_until. The cv unlocks and
  /// re-acquires the same underlying mutex, so the capability is held
  /// whenever caller code runs.
  std::unique_lock<std::mutex>& native() { return lk_; }

 private:
  std::unique_lock<std::mutex> lk_;
  Mutex& mu_;
};

/// Exclusive RAII lock over SharedMutex.
class HOPE_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) HOPE_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  /// Adopts an exclusive lock already held.
  WriterLock(SharedMutex& mu, std::adopt_lock_t) HOPE_REQUIRES(mu)
      : mu_(mu) {}
  ~WriterLock() HOPE_RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Shared RAII lock over SharedMutex.
class HOPE_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) HOPE_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() HOPE_RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace hope
