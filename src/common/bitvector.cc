#include "common/bitvector.h"

#include <algorithm>

#include "common/check.h"

namespace hope {

void BitVector::Finalize() {
  words_.shrink_to_fit();  // drop push-back growth slack
  size_t num_words = words_.size();
  size_t num_blocks = (num_words + kWordsPerBlock - 1) / kWordsPerBlock + 1;
  rank_samples_.assign(num_blocks, 0);
  size_t ones = 0;
  for (size_t w = 0; w < num_words; w++) {
    if (w % kWordsPerBlock == 0) rank_samples_[w / kWordsPerBlock] = ones;
    ones += PopCount64(words_[w]);
  }
  rank_samples_[(num_words + kWordsPerBlock - 1) / kWordsPerBlock] = ones;
  // Handle the case where num_words is a multiple of the block size: the
  // final sample slot must hold the total.
  rank_samples_.back() = ones;
  num_ones_ = ones;

  // Sample the word index containing every kSelectSampleRate-th one.
  select_samples_.clear();
  size_t seen = 0;
  for (size_t w = 0; w < num_words; w++) {
    int pc = PopCount64(words_[w]);
    size_t next_target = (seen / kSelectSampleRate) * kSelectSampleRate;
    if (seen % kSelectSampleRate != 0) next_target += kSelectSampleRate;
    while (next_target < seen + pc) {
      select_samples_.push_back(w);
      next_target += kSelectSampleRate;
    }
    seen += pc;
  }
}

size_t BitVector::Rank1(size_t pos) const {
  // Always-on: past-the-end positions would index words_/rank_samples_
  // out of bounds, and under NDEBUG the old assert let exactly that
  // happen. One predictable branch against the dominating cost of the
  // block scan below.
  HOPE_CHECK_MSG(pos <= num_bits_, "Rank1 position out of range");
  size_t word = pos >> 6;
  size_t block = word / kWordsPerBlock;
  size_t ones = rank_samples_[block];
  for (size_t w = block * kWordsPerBlock; w < word; w++)
    ones += PopCount64(words_[w]);
  size_t bit_in_word = pos & 63;
  if (bit_in_word != 0)
    ones += PopCount64(words_[word] >> (64 - bit_in_word));
  return ones;
}

size_t BitVector::Select1(size_t i) const {
  HOPE_CHECK_MSG(i < num_ones_, "Select1 index out of range");
  // Start from the sampled word if available.
  size_t w = 0;
  size_t sample_idx = i / kSelectSampleRate;
  size_t seen = 0;
  if (sample_idx < select_samples_.size()) {
    w = select_samples_[sample_idx];
    // Recompute ones before word w via rank samples.
    size_t block = w / kWordsPerBlock;
    seen = rank_samples_[block];
    for (size_t x = block * kWordsPerBlock; x < w; x++)
      seen += PopCount64(words_[x]);
  }
  for (; w < words_.size(); w++) {
    int pc = PopCount64(words_[w]);
    if (seen + pc > i) {
      // The (i - seen)-th one within this word (0-based), MSB-first.
      uint64_t word = words_[w];
      size_t need = i - seen;
      for (int b = 0; b < 64; b++) {
        if ((word >> (63 - b)) & 1) {
          if (need == 0) return w * 64 + b;
          need--;
        }
      }
    }
    seen += pc;
  }
  // Unreachable when the index precondition above holds and the select
  // samples are consistent; trapping beats returning a garbage position.
  HOPE_CHECK_MSG(false, "Select1 scan ran past the last word");
}

size_t BitVector::Select0(size_t i) const {
  HOPE_CHECK_MSG(i < num_bits_ - num_ones_, "Select0 index out of range");
  // Zeros are not sampled; binary search on Rank0 over blocks, then scan.
  size_t lo = 0, hi = words_.size();
  // Rank0 before word w = w*64 - rank1(w*64).
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    size_t zeros_before = mid * 64 - Rank1(std::min(mid * 64, num_bits_));
    if (zeros_before <= i)
      lo = mid + 1;
    else
      hi = mid;
  }
  size_t w = lo == 0 ? 0 : lo - 1;
  size_t seen = w * 64 - Rank1(std::min(w * 64, num_bits_));
  uint64_t word = w < words_.size() ? words_[w] : 0;
  for (int b = 0; b < 64; b++) {
    size_t pos = w * 64 + b;
    if (pos >= num_bits_) break;
    if (!((word >> (63 - b)) & 1)) {
      if (seen == i) return pos;
      seen++;
    }
  }
  HOPE_CHECK_MSG(false, "Select0 scan ran past the last word");
}

size_t BitVector::NextOne(size_t pos) const {
  if (pos >= num_bits_) return num_bits_;
  size_t w = pos >> 6;
  uint64_t word = words_[w] & (~uint64_t{0} >> (pos & 63));
  while (true) {
    if (word != 0) {
      size_t res = w * 64 + __builtin_clzll(word);
      return res < num_bits_ ? res : num_bits_;
    }
    w++;
    if (w >= words_.size()) return num_bits_;
    word = words_[w];
  }
}

size_t BitVector::PrevOne(size_t pos) const {
  if (num_bits_ == 0) return num_bits_;
  if (pos >= num_bits_) pos = num_bits_ - 1;
  size_t w = pos >> 6;
  int bit = static_cast<int>(pos & 63);
  uint64_t mask = bit == 63 ? ~uint64_t{0} : ~(~uint64_t{0} >> (bit + 1));
  uint64_t word = words_[w] & mask;
  while (true) {
    if (word != 0) return w * 64 + (63 - __builtin_ctzll(word));
    if (w == 0) return num_bits_;
    w--;
    word = words_[w];
  }
}

}  // namespace hope
