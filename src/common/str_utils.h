// String helpers for the string-axis model (§3.1 of the paper).
//
// Interval boundaries are finite byte strings; an interval [b, e) contains
// every string s with b <= s < e. The common prefix of an interval is
// lcp(b, pred(e)) where pred(e) is the largest string < e, conceptually
// e with its last byte decremented followed by infinitely many 0xFF bytes.
#pragma once

#include <string>
#include <string_view>

#include "common/simd.h"

namespace hope {

/// Longest common prefix length of two byte strings (word-at-a-time).
inline size_t LcpLen(std::string_view a, std::string_view b) {
  return simd::LcpLen(a, b);
}

/// The common prefix shared by *all* strings in the interval [b, e),
/// where e == "" means +infinity (the interval is unbounded above).
///
/// pred(e) is e with its last byte decremented then padded with 0xFF, so
/// lcp(b, pred(e)) may be longer than lcp(b, e). Example: [azz, b) ->
/// pred = a\xff\xff... -> common prefix "a".
inline std::string IntervalCommonPrefix(std::string_view b,
                                        std::string_view e) {
  if (e.empty()) {
    // [b, +inf): no common prefix unless b covers a single top byte and
    // there is nothing above — callers split such intervals; return lcp
    // with 0xFF-padding of b's first byte region only if b is all 0xFF.
    std::string all_ff(b.size() + 1, '\xff');
    return std::string(b.substr(0, LcpLen(b, all_ff)));
  }
  // Build pred(e), the largest string < e. If e ends in '\0' that is
  // simply e minus its final byte (nothing fits between "x" and "x\0");
  // otherwise decrement the last byte and pad with 0xFF.
  std::string pred(e);
  if (pred.back() == '\0') {
    pred.pop_back();
    if (pred.empty()) return std::string();  // [b, "\0"): no non-empty members
  } else {
    pred.back() =
        static_cast<char>(static_cast<unsigned char>(pred.back()) - 1);
    pred.append(b.size() + 2, '\xff');
  }
  return std::string(b.substr(0, LcpLen(b, pred)));
}

/// The immediate successor of s in lexicographic order among byte strings:
/// s + '\0'.
inline std::string Successor(std::string_view s) {
  std::string r(s);
  r.push_back('\0');
  return r;
}

/// The smallest string strictly greater than every string with prefix s —
/// i.e. s with its last byte incremented (carrying into shorter strings).
/// Returns "" if s is all 0xFF (no such string: +infinity).
inline std::string PrefixUpperBound(std::string_view s) {
  std::string r(s);
  while (!r.empty() &&
         static_cast<unsigned char>(r.back()) == 0xFF)
    r.pop_back();
  if (r.empty()) return r;
  r.back() = static_cast<char>(static_cast<unsigned char>(r.back()) + 1);
  return r;
}

}  // namespace hope
