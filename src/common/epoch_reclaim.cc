#include "common/epoch_reclaim.h"

#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "telemetry/trace_log.h"

namespace hope::ebr {

namespace {

/// Epochs start above 2 so `tag <= G - 2` never underflows.
constexpr uint64_t kFirstEpoch = 2;

struct Retired {
  uint64_t tag;
  std::function<void()> deleter;
};

}  // namespace

struct EpochReclaimer::Slot {
  /// Epoch this thread is pinned at; 0 = not inside a guard.
  std::atomic<uint64_t> epoch{0};
  /// Claimed by a live thread. Released (and later recycled) on thread
  /// exit, so the slot list is bounded by peak reader concurrency, not
  /// by the number of threads ever seen.
  std::atomic<bool> owned{false};
  /// Guard nesting depth; touched only by the owning thread.
  uint32_t depth = 0;
  Slot* next = nullptr;  ///< append-only intrusive list
};

struct EpochReclaimer::State {
  std::atomic<uint64_t> global_epoch{kFirstEpoch};
  std::atomic<Slot*> slots{nullptr};

  Mutex mu;  ///< serializes retire/advance/reclaim
  std::vector<Retired> limbo HOPE_GUARDED_BY(mu);

  std::atomic<uint64_t> retired{0};
  std::atomic<uint64_t> reclaimed{0};

  /// Optional lifecycle sink; TraceLog::Record is leaf-locked, so it is
  /// safe under mu.
  std::atomic<telemetry::TraceLog*> trace{nullptr};

  /// Records a freed batch (count > 0) after the deleters ran.
  void TraceReclaim(size_t freed) {
    if (telemetry::TraceLog* t = trace.load(std::memory_order_relaxed)) {
      const uint64_t pending = retired.load(std::memory_order_relaxed) -
                               reclaimed.load(std::memory_order_relaxed);
      t->Record(telemetry::TraceEventType::kEbrReclaim, -1, freed, pending);
    }
  }

  ~State() {
    // The reclaimer's destructor drained, so limbo is empty unless the
    // process is tearing down with readers leaked mid-guard; run what's
    // left rather than leak it. Locking here is uncontended by
    // definition (this is the last reference) but keeps the limbo
    // access under its capability.
    {
      MutexLock lock(mu);
      for (Retired& r : limbo) r.deleter();
    }
    Slot* slot = slots.load(std::memory_order_acquire);
    while (slot) {
      Slot* next = slot->next;
      delete slot;
      slot = next;
    }
  }

  /// Advances the epoch iff every pinned slot is pinned at the current
  /// one.
  bool TryAdvanceLocked() HOPE_REQUIRES(mu) {
    uint64_t g = global_epoch.load(std::memory_order_seq_cst);
    for (Slot* slot = slots.load(std::memory_order_acquire); slot;
         slot = slot->next) {
      uint64_t e = slot->epoch.load(std::memory_order_seq_cst);
      if (e != 0 && e != g) return false;  // a reader lags behind
    }
    global_epoch.store(g + 1, std::memory_order_seq_cst);
    if (telemetry::TraceLog* t = trace.load(std::memory_order_relaxed))
      t->Record(telemetry::TraceEventType::kEpochAdvance, -1, g + 1);
    return true;
  }

  /// Unlinks and frees released slots beyond a small recycling cushion,
  /// so pathological thread churn (many short-lived reader threads whose
  /// peaks never overlap) shrinks the list back instead of parking it at
  /// the historical peak. Safe because every traversal and every claim
  /// (SlotFor) also runs under mu, and a released slot's owner performed
  /// its release store of `owned` as its final access to the slot — the
  /// acquire load here orders the free after it. Returns slots freed.
  size_t CompactSlotsLocked() HOPE_REQUIRES(mu) {
    // Retain a few released slots for recycling: steady-state churn
    // (one thread at a time) should keep reusing one slot, not
    // alternate free/new on every thread.
    constexpr size_t kKeepReleased = 4;
    size_t seen_released = 0, freed = 0;
    Slot* head = slots.load(std::memory_order_relaxed);
    Slot** link = &head;
    while (*link) {
      Slot* s = *link;
      const bool released = !s->owned.load(std::memory_order_acquire) &&
                            s->epoch.load(std::memory_order_seq_cst) == 0;
      if (released && ++seen_released > kKeepReleased) {
        *link = s->next;
        delete s;
        freed++;
      } else {
        link = &s->next;
      }
    }
    slots.store(head, std::memory_order_release);
    return freed;
  }

  size_t SlotCountLocked() HOPE_REQUIRES(mu) {
    size_t n = 0;
    for (Slot* s = slots.load(std::memory_order_relaxed); s; s = s->next)
      n++;
    return n;
  }

  /// Moves every limbo entry whose grace period has passed into `out`;
  /// the caller runs the deleters outside the lock.
  void CollectLocked(std::vector<Retired>* out) HOPE_REQUIRES(mu) {
    uint64_t g = global_epoch.load(std::memory_order_seq_cst);
    size_t kept = 0;
    for (Retired& r : limbo) {
      if (r.tag + 2 <= g) {
        out->push_back(std::move(r));
      } else {
        limbo[kept++] = std::move(r);
      }
    }
    limbo.resize(kept);
  }
};

namespace {

/// Per-thread slot cache: one claimed slot per reclaimer this thread has
/// pinned. weak_ptr keeps thread exit safe when a test-scoped reclaimer
/// died first.
struct TlsSlots {
  struct Entry {
    EpochReclaimer::State* key;
    std::weak_ptr<EpochReclaimer::State> state;
    EpochReclaimer::Slot* slot;
  };
  std::vector<Entry> entries;

  ~TlsSlots() {
    for (Entry& e : entries)
      if (auto alive = e.state.lock())
        e.slot->owned.store(false, std::memory_order_release);
  }
};

thread_local TlsSlots tls_slots;

EpochReclaimer::Slot* SlotFor(const std::shared_ptr<EpochReclaimer::State>& state) {
  auto& entries = tls_slots.entries;
  for (size_t i = 0; i < entries.size(); i++) {
    if (entries[i].key == state.get()) {
      // Same address could be a recycled allocation; the weak_ptr is the
      // identity check.
      if (auto alive = entries[i].state.lock(); alive == state)
        return entries[i].slot;
    }
    if (entries[i].state.expired()) {
      entries[i] = entries.back();
      entries.pop_back();
      i--;
    }
  }

  // First guard against this reclaimer on this thread: recycle a slot a
  // finished thread released, else append a fresh one. Claim and append
  // run under mu — once per (thread, reclaimer), so the lock is cold —
  // which is what lets CompactSlotsLocked unlink released slots instead
  // of growing the list to the historical peak forever.
  EpochReclaimer::Slot* slot = nullptr;
  {
    MutexLock lock(state->mu);
    for (EpochReclaimer::Slot* s =
             state->slots.load(std::memory_order_relaxed);
         s; s = s->next) {
      // The acquire load pairs with the exiting owner's release store,
      // ordering its final slot writes before this thread's reuse.
      if (!s->owned.load(std::memory_order_acquire)) {
        s->owned.store(true, std::memory_order_relaxed);
        slot = s;
        break;
      }
    }
    if (!slot) {
      slot = new EpochReclaimer::Slot;
      slot->owned.store(true, std::memory_order_relaxed);
      slot->next = state->slots.load(std::memory_order_relaxed);
      state->slots.store(slot, std::memory_order_release);
    }
  }
  slot->depth = 0;
  entries.push_back({state.get(), state, slot});
  return slot;
}

}  // namespace

EpochReclaimer::EpochReclaimer() : state_(std::make_shared<State>()) {}

EpochReclaimer::~EpochReclaimer() { Drain(); }

EpochReclaimer::Guard::Guard(const EpochReclaimer& reclaimer)
    : slot_(SlotFor(reclaimer.state_)) {
  if (slot_->depth++ > 0) return;  // nested: already pinned
  State& st = *reclaimer.state_;
  uint64_t e = st.global_epoch.load(std::memory_order_seq_cst);
  slot_->epoch.store(e, std::memory_order_seq_cst);
  // One refresh if an advance raced the pin. A still-stale pin is safe —
  // it only parks the epoch until this guard exits — so a single retry
  // keeps the pin wait-free.
  uint64_t e2 = st.global_epoch.load(std::memory_order_seq_cst);
  if (e2 != e) slot_->epoch.store(e2, std::memory_order_seq_cst);
}

EpochReclaimer::Guard::~Guard() {
  if (--slot_->depth > 0) return;  // nested: outermost unpins
  slot_->epoch.store(0, std::memory_order_release);
}

void EpochReclaimer::Retire(void* ptr, void (*deleter)(void*)) {
  Retire([ptr, deleter] { deleter(ptr); });
}

void EpochReclaimer::Retire(std::function<void()> deleter) {
  State& st = *state_;
  std::vector<Retired> freeable;
  {
    MutexLock lock(st.mu);
    st.limbo.push_back(
        {st.global_epoch.load(std::memory_order_seq_cst),
         std::move(deleter)});
    st.retired.fetch_add(1, std::memory_order_relaxed);
    // Two advance attempts so a quiet reclaimer still ages this batch to
    // freeable on the next retire; pinned readers veto harmlessly.
    st.TryAdvanceLocked();
    st.TryAdvanceLocked();
    st.CollectLocked(&freeable);
    st.CompactSlotsLocked();
  }
  // Deleters run outside mu: they may be arbitrarily heavy (dictionary
  // teardown) and must not extend the writer critical section.
  for (Retired& r : freeable) r.deleter();
  st.reclaimed.fetch_add(freeable.size(), std::memory_order_relaxed);
  if (!freeable.empty()) st.TraceReclaim(freeable.size());
}

size_t EpochReclaimer::TryReclaim() {
  State& st = *state_;
  std::vector<Retired> freeable;
  {
    MutexLock lock(st.mu);
    // Compact before the empty-limbo early return: idle-period pollers
    // are exactly when churn-released slots should shrink away.
    st.CompactSlotsLocked();
    if (st.limbo.empty()) return 0;
    st.TryAdvanceLocked();
    st.TryAdvanceLocked();
    st.CollectLocked(&freeable);
  }
  for (Retired& r : freeable) r.deleter();
  st.reclaimed.fetch_add(freeable.size(), std::memory_order_relaxed);
  if (!freeable.empty()) st.TraceReclaim(freeable.size());
  return freeable.size();
}

void EpochReclaimer::Drain() {
  State& st = *state_;
  while (true) {
    std::vector<Retired> freeable;
    size_t remaining = 0;
    {
      MutexLock lock(st.mu);
      st.TryAdvanceLocked();
      st.TryAdvanceLocked();
      st.CollectLocked(&freeable);
      st.CompactSlotsLocked();
      remaining = st.limbo.size();
    }
    for (Retired& r : freeable) r.deleter();
    st.reclaimed.fetch_add(freeable.size(), std::memory_order_relaxed);
    if (!freeable.empty()) st.TraceReclaim(freeable.size());
    if (remaining == 0) return;
    std::this_thread::yield();  // readers still pinned; wait them out
  }
}

uint64_t EpochReclaimer::retired() const {
  return state_->retired.load(std::memory_order_relaxed);
}

uint64_t EpochReclaimer::reclaimed() const {
  return state_->reclaimed.load(std::memory_order_relaxed);
}

uint64_t EpochReclaimer::global_epoch() const {
  return state_->global_epoch.load(std::memory_order_seq_cst);
}

void EpochReclaimer::SetTraceLog(telemetry::TraceLog* trace) {
  state_->trace.store(trace, std::memory_order_relaxed);
}

std::vector<telemetry::MetricRegistry::Registration>
EpochReclaimer::RegisterMetrics(telemetry::MetricRegistry* registry,
                                telemetry::Labels labels) const {
  std::vector<telemetry::MetricRegistry::Registration> regs;
  if (registry == nullptr) return regs;
  using MK = telemetry::MetricKind;
  regs.push_back(registry->RegisterCallback(
      "hope_ebr_retired_total", labels, MK::kCounter,
      [this] { return static_cast<double>(retired()); }));
  regs.push_back(registry->RegisterCallback(
      "hope_ebr_reclaimed_total", labels, MK::kCounter,
      [this] { return static_cast<double>(reclaimed()); }));
  regs.push_back(registry->RegisterCallback(
      "hope_ebr_pending", labels, MK::kGauge,
      [this] { return static_cast<double>(pending()); }));
  regs.push_back(registry->RegisterCallback(
      "hope_ebr_epoch", std::move(labels), MK::kGauge,
      [this] { return static_cast<double>(global_epoch()); }));
  return regs;
}

size_t EpochReclaimer::slot_count() const {
  State& st = *state_;
  MutexLock lock(st.mu);
  return st.SlotCountLocked();
}

}  // namespace hope::ebr
