#include "common/epoch_reclaim.h"

#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace hope::ebr {

namespace {

/// Epochs start above 2 so `tag <= G - 2` never underflows.
constexpr uint64_t kFirstEpoch = 2;

struct Retired {
  uint64_t tag;
  std::function<void()> deleter;
};

}  // namespace

struct EpochReclaimer::Slot {
  /// Epoch this thread is pinned at; 0 = not inside a guard.
  std::atomic<uint64_t> epoch{0};
  /// Claimed by a live thread. Released (and later recycled) on thread
  /// exit, so the slot list is bounded by peak reader concurrency, not
  /// by the number of threads ever seen.
  std::atomic<bool> owned{false};
  /// Guard nesting depth; touched only by the owning thread.
  uint32_t depth = 0;
  Slot* next = nullptr;  ///< append-only intrusive list
};

struct EpochReclaimer::State {
  std::atomic<uint64_t> global_epoch{kFirstEpoch};
  std::atomic<Slot*> slots{nullptr};

  std::mutex mu;  ///< serializes retire/advance/reclaim
  std::vector<Retired> limbo;

  std::atomic<uint64_t> retired{0};
  std::atomic<uint64_t> reclaimed{0};

  ~State() {
    // The reclaimer's destructor drained, so limbo is empty unless the
    // process is tearing down with readers leaked mid-guard; run what's
    // left rather than leak it.
    for (Retired& r : limbo) r.deleter();
    Slot* slot = slots.load(std::memory_order_acquire);
    while (slot) {
      Slot* next = slot->next;
      delete slot;
      slot = next;
    }
  }

  /// Advances the epoch iff every pinned slot is pinned at the current
  /// one. Requires mu.
  bool TryAdvanceLocked() {
    uint64_t g = global_epoch.load(std::memory_order_seq_cst);
    for (Slot* slot = slots.load(std::memory_order_acquire); slot;
         slot = slot->next) {
      uint64_t e = slot->epoch.load(std::memory_order_seq_cst);
      if (e != 0 && e != g) return false;  // a reader lags behind
    }
    global_epoch.store(g + 1, std::memory_order_seq_cst);
    return true;
  }

  /// Moves every limbo entry whose grace period has passed into `out`.
  /// Requires mu; the caller runs the deleters outside it.
  void CollectLocked(std::vector<Retired>* out) {
    uint64_t g = global_epoch.load(std::memory_order_seq_cst);
    size_t kept = 0;
    for (Retired& r : limbo) {
      if (r.tag + 2 <= g) {
        out->push_back(std::move(r));
      } else {
        limbo[kept++] = std::move(r);
      }
    }
    limbo.resize(kept);
  }
};

namespace {

/// Per-thread slot cache: one claimed slot per reclaimer this thread has
/// pinned. weak_ptr keeps thread exit safe when a test-scoped reclaimer
/// died first.
struct TlsSlots {
  struct Entry {
    EpochReclaimer::State* key;
    std::weak_ptr<EpochReclaimer::State> state;
    EpochReclaimer::Slot* slot;
  };
  std::vector<Entry> entries;

  ~TlsSlots() {
    for (Entry& e : entries)
      if (auto alive = e.state.lock())
        e.slot->owned.store(false, std::memory_order_release);
  }
};

thread_local TlsSlots tls_slots;

EpochReclaimer::Slot* SlotFor(const std::shared_ptr<EpochReclaimer::State>& state) {
  auto& entries = tls_slots.entries;
  for (size_t i = 0; i < entries.size(); i++) {
    if (entries[i].key == state.get()) {
      // Same address could be a recycled allocation; the weak_ptr is the
      // identity check.
      if (auto alive = entries[i].state.lock(); alive == state)
        return entries[i].slot;
    }
    if (entries[i].state.expired()) {
      entries[i] = entries.back();
      entries.pop_back();
      i--;
    }
  }

  // First guard against this reclaimer on this thread: recycle a slot a
  // finished thread released, else append a fresh one.
  EpochReclaimer::Slot* slot = nullptr;
  for (EpochReclaimer::Slot* s =
           state->slots.load(std::memory_order_acquire);
       s; s = s->next) {
    bool expected = false;
    if (s->owned.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
      slot = s;
      break;
    }
  }
  if (!slot) {
    slot = new EpochReclaimer::Slot;
    slot->owned.store(true, std::memory_order_relaxed);
    slot->next = state->slots.load(std::memory_order_relaxed);
    while (!state->slots.compare_exchange_weak(slot->next, slot,
                                               std::memory_order_acq_rel,
                                               std::memory_order_relaxed)) {
    }
  }
  slot->depth = 0;
  entries.push_back({state.get(), state, slot});
  return slot;
}

}  // namespace

EpochReclaimer::EpochReclaimer() : state_(std::make_shared<State>()) {}

EpochReclaimer::~EpochReclaimer() { Drain(); }

EpochReclaimer::Guard::Guard(const EpochReclaimer& reclaimer)
    : slot_(SlotFor(reclaimer.state_)) {
  if (slot_->depth++ > 0) return;  // nested: already pinned
  State& st = *reclaimer.state_;
  uint64_t e = st.global_epoch.load(std::memory_order_seq_cst);
  slot_->epoch.store(e, std::memory_order_seq_cst);
  // One refresh if an advance raced the pin. A still-stale pin is safe —
  // it only parks the epoch until this guard exits — so a single retry
  // keeps the pin wait-free.
  uint64_t e2 = st.global_epoch.load(std::memory_order_seq_cst);
  if (e2 != e) slot_->epoch.store(e2, std::memory_order_seq_cst);
}

EpochReclaimer::Guard::~Guard() {
  if (--slot_->depth > 0) return;  // nested: outermost unpins
  slot_->epoch.store(0, std::memory_order_release);
}

void EpochReclaimer::Retire(void* ptr, void (*deleter)(void*)) {
  Retire([ptr, deleter] { deleter(ptr); });
}

void EpochReclaimer::Retire(std::function<void()> deleter) {
  State& st = *state_;
  std::vector<Retired> freeable;
  {
    std::lock_guard<std::mutex> lock(st.mu);
    st.limbo.push_back(
        {st.global_epoch.load(std::memory_order_seq_cst),
         std::move(deleter)});
    st.retired.fetch_add(1, std::memory_order_relaxed);
    // Two advance attempts so a quiet reclaimer still ages this batch to
    // freeable on the next retire; pinned readers veto harmlessly.
    st.TryAdvanceLocked();
    st.TryAdvanceLocked();
    st.CollectLocked(&freeable);
  }
  // Deleters run outside mu: they may be arbitrarily heavy (dictionary
  // teardown) and must not extend the writer critical section.
  for (Retired& r : freeable) r.deleter();
  st.reclaimed.fetch_add(freeable.size(), std::memory_order_relaxed);
}

size_t EpochReclaimer::TryReclaim() {
  State& st = *state_;
  std::vector<Retired> freeable;
  {
    std::lock_guard<std::mutex> lock(st.mu);
    if (st.limbo.empty()) return 0;
    st.TryAdvanceLocked();
    st.TryAdvanceLocked();
    st.CollectLocked(&freeable);
  }
  for (Retired& r : freeable) r.deleter();
  st.reclaimed.fetch_add(freeable.size(), std::memory_order_relaxed);
  return freeable.size();
}

void EpochReclaimer::Drain() {
  State& st = *state_;
  while (true) {
    std::vector<Retired> freeable;
    size_t remaining = 0;
    {
      std::lock_guard<std::mutex> lock(st.mu);
      st.TryAdvanceLocked();
      st.TryAdvanceLocked();
      st.CollectLocked(&freeable);
      remaining = st.limbo.size();
    }
    for (Retired& r : freeable) r.deleter();
    st.reclaimed.fetch_add(freeable.size(), std::memory_order_relaxed);
    if (remaining == 0) return;
    std::this_thread::yield();  // readers still pinned; wait them out
  }
}

uint64_t EpochReclaimer::retired() const {
  return state_->retired.load(std::memory_order_relaxed);
}

uint64_t EpochReclaimer::reclaimed() const {
  return state_->reclaimed.load(std::memory_order_relaxed);
}

uint64_t EpochReclaimer::global_epoch() const {
  return state_->global_epoch.load(std::memory_order_seq_cst);
}

}  // namespace hope::ebr
