// Library version, surfaced by `hope_cli version` and available to
// embedders. Bump the minor on each feature PR, the patch on fixes.
#pragma once

namespace hope {

inline constexpr const char kVersion[] = "0.6.0";

}  // namespace hope
