// Portable wrappers over Clang's thread-safety attributes, in the style
// of Abseil's thread_annotations.h. Under clang the macros expand to the
// capability-analysis attributes checked by -Wthread-safety (the CI
// thread-safety job builds with -Wthread-safety -Werror, so a violated
// contract is a build break); under GCC and other compilers they expand
// to nothing, so annotated code stays portable.
//
// The vocabulary, applied throughout src/:
//
//   HOPE_GUARDED_BY(mu)   on a field: reads and writes require `mu`.
//   HOPE_PT_GUARDED_BY(mu) on a pointer field: the pointee requires
//                         `mu` (the pointer itself may be read freely).
//   HOPE_REQUIRES(mu)     on a method: callers must hold `mu`. This is
//                         the machine-checked form of the `*Locked`
//                         naming convention.
//   HOPE_ACQUIRE / HOPE_RELEASE / HOPE_TRY_ACQUIRE
//                         on lock-management methods.
//   HOPE_EXCLUDES(mu)     on a method: callers must NOT hold `mu`
//                         (deadlock guard for self-locking methods).
//   HOPE_CAPABILITY       on a type: makes it a lockable capability
//                         (see common/mutex.h for the annotated
//                         std::mutex / std::shared_mutex wrappers).
//   HOPE_NO_THREAD_SAFETY_ANALYSIS
//                         escape hatch; every use must carry a comment
//                         naming the invariant the analysis cannot see.
//
// EBR protocol marker (not a clang attribute): fields holding pointers
// published through ebr::EpochReclaimer are tagged HOPE_EBR_PUBLISHED.
// tools/check_ebr_guards.py keys on the tag to enforce the guard
// protocol that capability analysis cannot express — every raw load of
// such a field must be lexically dominated by a live ebr Guard, and
// Retire must never run under a reader-blocking shard lock.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define HOPE_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define HOPE_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

#define HOPE_CAPABILITY(x) \
  HOPE_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define HOPE_SCOPED_CAPABILITY \
  HOPE_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define HOPE_GUARDED_BY(x) \
  HOPE_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define HOPE_PT_GUARDED_BY(x) \
  HOPE_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define HOPE_REQUIRES(...) \
  HOPE_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define HOPE_REQUIRES_SHARED(...) \
  HOPE_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

#define HOPE_ACQUIRE(...) \
  HOPE_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define HOPE_ACQUIRE_SHARED(...) \
  HOPE_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

#define HOPE_RELEASE(...) \
  HOPE_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define HOPE_RELEASE_SHARED(...) \
  HOPE_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

#define HOPE_RELEASE_GENERIC(...) \
  HOPE_THREAD_ANNOTATION_ATTRIBUTE(release_generic_capability(__VA_ARGS__))

#define HOPE_TRY_ACQUIRE(...) \
  HOPE_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define HOPE_TRY_ACQUIRE_SHARED(...)        \
  HOPE_THREAD_ANNOTATION_ATTRIBUTE(         \
      try_acquire_shared_capability(__VA_ARGS__))

#define HOPE_EXCLUDES(...) \
  HOPE_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define HOPE_ACQUIRED_BEFORE(...) \
  HOPE_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

#define HOPE_ACQUIRED_AFTER(...) \
  HOPE_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

#define HOPE_RETURN_CAPABILITY(x) \
  HOPE_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define HOPE_ASSERT_CAPABILITY(x) \
  HOPE_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#define HOPE_NO_THREAD_SAFETY_ANALYSIS \
  HOPE_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

// Marker for atomic pointer fields published through the EBR reclaimer.
// Expands to nothing for every compiler; tools/check_ebr_guards.py keys
// on the token to find the fields whose loads it audits.
#define HOPE_EBR_PUBLISHED
