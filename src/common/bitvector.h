// Succinct bit-vector with rank/select support.
//
// Used by SuRF's LOUDS-encoded tries and by HOPE's bitmap-trie dictionary.
// Bits are MSB-first within each 64-bit word so that bit index order matches
// lexicographic label order.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bits.h"

namespace hope {

/// An append-only bit-vector. Call Finalize() to build the rank/select
/// index; rank/select queries are only valid after that.
class BitVector {
 public:
  BitVector() = default;

  /// Appends one bit.
  void PushBack(bool bit) {
    size_t word = num_bits_ >> 6;
    if (word >= words_.size()) words_.push_back(0);
    if (bit) hope::SetBit(words_.data(), num_bits_);
    num_bits_++;
  }

  /// Appends `n` zero bits, then sets the bit at (old_size + pos).
  void AppendZeros(size_t n) {
    num_bits_ += n;
    words_.resize((num_bits_ + 63) / 64, 0);
  }

  /// Sets bit `pos` (must be < size). Only valid before Finalize().
  void Set(size_t pos) { hope::SetBit(words_.data(), pos); }

  bool Get(size_t pos) const { return hope::GetBit(words_.data(), pos); }

  size_t size() const { return num_bits_; }

  /// Builds the rank/select acceleration structures.
  void Finalize();

  /// Number of 1-bits in positions [0, pos). pos may equal size().
  size_t Rank1(size_t pos) const;

  /// Number of 0-bits in positions [0, pos).
  size_t Rank0(size_t pos) const { return pos - Rank1(pos); }

  /// Position of the i-th 1-bit (0-based). i must be < Rank1(size()).
  size_t Select1(size_t i) const;

  /// Position of the i-th 0-bit (0-based).
  size_t Select0(size_t i) const;

  /// Index of the next set bit at position >= pos, or size() if none.
  size_t NextOne(size_t pos) const;

  /// Index of the previous set bit at position <= pos, or size() if none.
  size_t PrevOne(size_t pos) const;

  /// Total ones.
  size_t num_ones() const { return num_ones_; }

  /// Heap memory in bytes (payload + rank/select index).
  size_t MemoryBytes() const {
    return words_.capacity() * 8 + rank_samples_.capacity() * 8 +
           select_samples_.capacity() * 8;
  }

 private:
  static constexpr size_t kWordsPerBlock = 8;  // 512-bit rank blocks
  static constexpr size_t kSelectSampleRate = 512;

  std::vector<uint64_t> words_;
  std::vector<uint64_t> rank_samples_;    // cumulative ones per block
  std::vector<uint64_t> select_samples_;  // position of every 512th one
  size_t num_bits_ = 0;
  size_t num_ones_ = 0;
};

}  // namespace hope
