// Strict numeric argument parsing, shared by the bench env knobs and the
// CLI demos.
//
// strtoull alone is the wrong contract for user-facing counts: it
// silently accepts leading whitespace and an explicit '+', wraps
// negative input to huge values, saturates on overflow, and stops at the
// first non-digit ("12x" parses as 12). Every consumer of a count-like
// argument (HOPE_BENCH_KEYS, hope_cli's keys/shards/workers/dict_size)
// wants the same rule instead: the input is a plain run of decimal
// digits, in range, and nothing else.
#pragma once

#include <cerrno>
#include <cstdlib>

namespace hope {

/// Parses `s` as a positive decimal integer in [1, max]. Accepts only
/// digits — no sign, no whitespace, no trailing junk, no empty string —
/// and rejects 0, overflow, and values above `max`. Returns false
/// without touching *out on any rejection.
inline bool ParsePositiveUint(const char* s, unsigned long long max,
                              unsigned long long* out) {
  if (s == nullptr || *s == '\0') return false;
  for (const char* p = s; *p; p++)
    if (*p < '0' || *p > '9') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (errno == ERANGE || *end != '\0' || v == 0 || v > max) return false;
  *out = v;
  return true;
}

}  // namespace hope
