// Release-safe runtime contracts.
//
// `assert` compiles out under NDEBUG, which is exactly the build that
// serves untrusted input: a violated precondition then reads garbage (or
// out-of-bounds memory) instead of stopping. This header gives the
// codebase two graded contract macros:
//
//   HOPE_CHECK(cond)            always on, every build type. A failure
//   HOPE_CHECK_MSG(cond, msg)   prints `expr @ file:line` (+ msg) to
//                               stderr and aborts — fail-fast, so the
//                               fuzzers and sanitizers register it as a
//                               crash at the violation site instead of a
//                               corruption arbitrarily later.
//
//   HOPE_DCHECK(cond)           on in debug and sanitizer/fuzzer builds
//   HOPE_DCHECK_MSG(cond, msg)  (see HOPE_DCHECK_ENABLED below), free in
//                               plain release. For internal invariants on
//                               hot paths where the always-on check would
//                               cost real cycles.
//
// Choosing between them: a condition an *input* can violate (serialized
// blob fields, decode bitstreams, index arguments on public entry
// points) is HOPE_CHECK — or, on a path that must reject rather than
// trap (Hope::Deserialize returns nullptr), an explicit `return`/throw.
// A condition only a bug in this codebase can violate is HOPE_DCHECK,
// promoted to HOPE_CHECK when it guards memory safety and sits off the
// per-symbol hot path (the bitvector rank/select preconditions, say).
//
// The failure hook lives out-of-line (check.cc) so a check site costs
// one predictable branch + one call-site constant, nothing more.
#pragma once

namespace hope::internal {

/// Prints "CHECK failed: expr (msg) @ file:line" to stderr and aborts.
/// Out-of-line and noreturn: the compiler keeps the failing arm cold.
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              const char* msg);

}  // namespace hope::internal

#define HOPE_CHECK_MSG(cond, msg)                                        \
  (__builtin_expect(static_cast<bool>(cond), 1)                          \
       ? static_cast<void>(0)                                            \
       : ::hope::internal::CheckFailed(#cond, __FILE__, __LINE__, (msg)))

#define HOPE_CHECK(cond) HOPE_CHECK_MSG(cond, nullptr)

// HOPE_DCHECK is live whenever the build is already paying for checking:
// debug (!NDEBUG), any sanitizer instrumentation, or an explicit
// -DHOPE_DCHECK_ALWAYS (the HOPE_FUZZ build sets it so fuzzers exercise
// the internal contracts too, not just the always-on ones).
#if !defined(NDEBUG) || defined(HOPE_DCHECK_ALWAYS) ||      \
    defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define HOPE_DCHECK_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(undefined_behavior_sanitizer)
#define HOPE_DCHECK_ENABLED 1
#endif
#endif

#ifdef HOPE_DCHECK_ENABLED
#define HOPE_DCHECK_MSG(cond, msg) HOPE_CHECK_MSG(cond, msg)
#define HOPE_DCHECK(cond) HOPE_CHECK(cond)
#else
// Void-cast, not `if (false)`: operands must stay syntactically checked
// (and unused-variable warnings suppressed) without being evaluated.
#define HOPE_DCHECK_MSG(cond, msg) \
  static_cast<void>(sizeof((cond) ? 1 : 0))
#define HOPE_DCHECK(cond) HOPE_DCHECK_MSG(cond, nullptr)
#endif
