#include "common/bits.h"

#include <algorithm>

namespace hope {

int CompareBitStrings(std::string_view a, size_t a_bits, std::string_view b,
                      size_t b_bits) {
  size_t a_bytes = (a_bits + 7) / 8;
  size_t b_bytes = (b_bits + 7) / 8;
  size_t common_full = std::min(a_bits, b_bits) / 8;
  int cmp = std::memcmp(a.data(), b.data(), common_full);
  if (cmp != 0) return cmp;
  // Compare the remaining bits one at a time.
  size_t min_bits = std::min(a_bits, b_bits);
  for (size_t i = common_full * 8; i < min_bits; i++) {
    int ab = (static_cast<uint8_t>(a[i / 8]) >> (7 - (i % 8))) & 1;
    int bb = (static_cast<uint8_t>(b[i / 8]) >> (7 - (i % 8))) & 1;
    if (ab != bb) return ab - bb;
  }
  (void)a_bytes;
  (void)b_bytes;
  if (a_bits == b_bits) return 0;
  return a_bits < b_bits ? -1 : 1;
}

size_t AppendCode(std::string* buf, size_t bit_offset, Code code) {
  size_t end_bits = bit_offset + code.len;
  size_t need_bytes = (end_bits + 7) / 8;
  if (buf->size() < need_bytes) buf->resize(need_bytes, '\0');
  uint64_t bits = code.bits;  // left-aligned
  size_t pos = bit_offset;
  int remaining = code.len;
  while (remaining > 0) {
    size_t byte = pos / 8;
    int bit_in_byte = static_cast<int>(pos % 8);
    int room = 8 - bit_in_byte;
    int take = std::min(room, remaining);
    // Top `take` bits of `bits`.
    uint8_t chunk = static_cast<uint8_t>(bits >> (64 - take));
    (*buf)[byte] = static_cast<char>(
        static_cast<uint8_t>((*buf)[byte]) |
        static_cast<uint8_t>(chunk << (room - take)));
    bits <<= take;
    remaining -= take;
    pos += take;
  }
  return end_bits;
}

}  // namespace hope
