// Zipfian sampling utilities.
//
// Used by the dataset generators (domain/word popularity skew) and by the
// YCSB workload driver (query key popularity, YCSB's scrambled Zipfian).
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace hope {

/// Samples ranks 0..n-1 with P(rank k) proportional to 1/(k+1)^theta via
/// a precomputed CDF and binary search. Exact (not approximate), suitable
/// for n up to a few million.
class ZipfDistribution {
 public:
  explicit ZipfDistribution(size_t n, double theta = 0.99) : cdf_(n) {
    double sum = 0;
    for (size_t k = 0; k < n; k++) {
      sum += 1.0 / std::pow(static_cast<double>(k + 1), theta);
      cdf_[k] = sum;
    }
    for (size_t k = 0; k < n; k++) cdf_[k] /= sum;
  }

  template <typename Rng>
  size_t operator()(Rng& rng) const {
    double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  }

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// YCSB-style scrambled Zipfian: Zipf-ranked popularity spread over the
/// item space via a multiplicative hash, so popular items are not
/// clustered at the low indices.
class ScrambledZipf {
 public:
  ScrambledZipf(size_t n, double theta = 0.99) : n_(n), zipf_(n, theta) {}

  template <typename Rng>
  size_t operator()(Rng& rng) const {
    uint64_t rank = zipf_(rng);
    return Scramble(rank) % n_;
  }

  static uint64_t Scramble(uint64_t x) {
    // Murmur3-style 64-bit mix; the golden-ratio offset keeps rank 0 from
    // fixing to item 0.
    x += 0x9E3779B97F4A7C15ull;
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ull;
    x ^= x >> 33;
    return x;
  }

 private:
  size_t n_;
  ZipfDistribution zipf_;
};

}  // namespace hope
