// Simplified Height-Optimized Trie (after Binna et al., SIGMOD'18).
//
// The original HOT is a SIMD-heavy engineering artifact; what the paper's
// evaluation depends on is its *behavior*: HOT stores only discriminative
// partial keys (the minimum information needed to route to a candidate
// tuple, verified against the full key afterwards), giving it very low
// height and small memory — and therefore the *least* benefit from key
// compression (Fig. 7). This reimplementation captures exactly that: a
// byte-level discriminative Patricia trie. Each node stores one
// discriminating byte offset and a sorted, exact-fit edge array (fanout
// up to 257: 256 byte values plus end-of-key); non-discriminative bytes
// are skipped entirely, never stored. Leaves hold a pointer to the
// externally-owned tuple key plus the value; lookups verify against the
// tuple like HOT's final full-key check. See DESIGN.md §3 for the
// substitution rationale.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace hope {

class Hot {
 public:
  Hot() = default;
  ~Hot();

  Hot(const Hot&) = delete;
  Hot& operator=(const Hot&) = delete;

  /// Inserts a key/value pair; overwrites the value if the key exists.
  void Insert(std::string_view key, uint64_t value);

  bool Lookup(std::string_view key, uint64_t* value) const;

  /// Removes a key. Returns false if absent. A node left with a single
  /// edge is replaced by its remaining child (the Patricia invariant is
  /// restored automatically).
  bool Erase(std::string_view key);

  /// Scans up to `count` entries starting at the first key >= start.
  size_t Scan(std::string_view start, size_t count,
              std::vector<uint64_t>* out) const;

  size_t size() const { return size_; }

  /// Index memory: nodes + leaves; tuple key bytes excluded (HOT stores
  /// only partial keys).
  size_t MemoryBytes() const { return memory_; }

  /// Average number of node levels above a leaf.
  double AverageLeafDepth() const;

  /// Validates Patricia invariants: strictly increasing offsets along
  /// every path, sorted children, and subtree byte agreement below each
  /// node's offset. Returns "" when consistent.
  std::string CheckInvariants() const;

 private:
  struct Leaf {
    const std::string* key;
    uint64_t value;
  };

  using Child = void*;  // tagged: bit 0 set = Leaf

  struct Edge {
    int16_t byte;  ///< -1 for end-of-key, else 0..255
    Child child;
  };

  /// Exact-fit node: header plus a trailing sorted edge array, sized to
  /// the edge count (no vector headers or capacity slack; this is what a
  /// compact linearized trie node layout occupies).
  struct Node {
    uint32_t offset;  ///< discriminating byte position
    uint16_t count;
    Edge edges[];  // NOLINT: flexible array (GNU extension)
  };

  static bool IsLeaf(Child c) {
    return (reinterpret_cast<uintptr_t>(c) & 1) != 0;
  }
  static Leaf* AsLeaf(Child c) {
    return reinterpret_cast<Leaf*>(reinterpret_cast<uintptr_t>(c) &
                                   ~uintptr_t{1});
  }
  static Node* AsNode(Child c) { return reinterpret_cast<Node*>(c); }
  static Child TagLeaf(Leaf* l) {
    return reinterpret_cast<Child>(reinterpret_cast<uintptr_t>(l) | 1);
  }

  /// Byte at `off` with end-of-key semantics: -1 when off >= key length
  /// (a prefix sorts before its extensions).
  static int ByteAt(std::string_view key, size_t off) {
    return off < key.size() ? static_cast<uint8_t>(key[off]) : -1;
  }

  static size_t NodeBytes(uint16_t count) {
    return sizeof(Node) + count * sizeof(Edge);
  }
  Node* AllocNode(uint32_t offset, uint16_t count);
  void FreeNode(Node* n);
  /// Returns a new node with `e` inserted in sorted position; frees `n`.
  Node* WithEdge(Node* n, Edge e);
  /// Returns a new node without the edge for `byte`; frees `n`.
  Node* WithoutEdge(Node* n, int byte);
  bool EraseRec(Child* slot, std::string_view key);

  static const Edge* FindEdge(const Node* n, int byte);

  const Leaf* DescendBestEffort(std::string_view key) const;
  const Leaf* MinLeaf(Child c) const;
  size_t EmitAll(Child c, size_t count, size_t produced,
                 std::vector<uint64_t>* out) const;
  size_t EmitGE(Child c, std::string_view start, size_t count,
                size_t produced, std::vector<uint64_t>* out) const;
  void FreeChild(Child c);
  void DepthStats(Child c, size_t depth, size_t* total, size_t* leaves) const;
  std::string CheckRec(Child c, uint32_t min_offset) const;

  Child root_ = nullptr;
  std::deque<std::string> tuples_;
  size_t size_ = 0;
  size_t memory_ = 0;
};

}  // namespace hope
