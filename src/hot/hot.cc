#include "hot/hot.h"

#include <algorithm>
#include <cassert>
#include <new>

namespace hope {

Hot::Node* Hot::AllocNode(uint32_t offset, uint16_t count) {
  Node* n = static_cast<Node*>(::operator new(NodeBytes(count)));
  n->offset = offset;
  n->count = count;
  memory_ += NodeBytes(count) + sizeof(void*);  // + allocator header
  return n;
}

void Hot::FreeNode(Node* n) {
  memory_ -= NodeBytes(n->count) + sizeof(void*);
  ::operator delete(n);
}

Hot::Node* Hot::WithEdge(Node* n, Edge e) {
  Node* bigger = AllocNode(n->offset, static_cast<uint16_t>(n->count + 1));
  uint16_t pos = 0;
  while (pos < n->count && n->edges[pos].byte < e.byte) pos++;
  assert(pos == n->count || n->edges[pos].byte != e.byte);
  std::copy(n->edges, n->edges + pos, bigger->edges);
  bigger->edges[pos] = e;
  std::copy(n->edges + pos, n->edges + n->count, bigger->edges + pos + 1);
  FreeNode(n);
  return bigger;
}

const Hot::Edge* Hot::FindEdge(const Node* n, int byte) {
  // Binary search over the sorted edge array.
  uint16_t lo = 0, hi = n->count;
  while (lo < hi) {
    uint16_t mid = static_cast<uint16_t>((lo + hi) / 2);
    if (n->edges[mid].byte < byte)
      lo = static_cast<uint16_t>(mid + 1);
    else
      hi = mid;
  }
  return lo < n->count && n->edges[lo].byte == byte ? &n->edges[lo] : nullptr;
}

Hot::~Hot() {
  if (root_) FreeChild(root_);
}

void Hot::FreeChild(Child c) {
  if (IsLeaf(c)) {
    delete AsLeaf(c);
    return;
  }
  Node* n = AsNode(c);
  for (uint16_t i = 0; i < n->count; i++) FreeChild(n->edges[i].child);
  FreeNode(n);
}

const Hot::Leaf* Hot::DescendBestEffort(std::string_view key) const {
  Child c = root_;
  while (!IsLeaf(c)) {
    const Node* n = AsNode(c);
    const Edge* exact = FindEdge(n, ByteAt(key, n->offset));
    c = exact ? exact->child : n->edges[0].child;
  }
  return AsLeaf(c);
}

const Hot::Leaf* Hot::MinLeaf(Child c) const {
  while (!IsLeaf(c)) c = AsNode(c)->edges[0].child;
  return AsLeaf(c);
}

void Hot::Insert(std::string_view key, uint64_t value) {
  if (!root_) {
    tuples_.emplace_back(key);
    root_ = TagLeaf(new Leaf{&tuples_.back(), value});
    memory_ += sizeof(Leaf);
    size_ = 1;
    return;
  }
  // Phase 1: find a candidate leaf and the first discriminating offset.
  const Leaf* cand = DescendBestEffort(key);
  const std::string& ckey = *cand->key;
  size_t o = 0;
  while (ByteAt(key, o) == ByteAt(ckey, o)) {
    if (o >= key.size() && o >= ckey.size()) {  // equal keys
      const_cast<Leaf*>(cand)->value = value;
      return;
    }
    o++;
  }
  int new_byte = ByteAt(key, o);
  int old_byte = ByteAt(ckey, o);

  // Phase 2: re-descend to the slot where offset o belongs. Every node on
  // the path with offset < o has an exact child for the key's byte
  // (because the subtree agrees with `ckey` below its offset and the key
  // agrees with `ckey` before o).
  Child* slot = &root_;
  while (!IsLeaf(*slot)) {
    Node* n = AsNode(*slot);
    if (n->offset >= o) break;
    Edge* e = const_cast<Edge*>(FindEdge(n, ByteAt(key, n->offset)));
    assert(e && "exact child must exist below the first diff offset");
    slot = &e->child;
  }

  tuples_.emplace_back(key);
  Leaf* leaf = new Leaf{&tuples_.back(), value};
  memory_ += sizeof(Leaf);
  size_++;

  if (!IsLeaf(*slot) && AsNode(*slot)->offset == o) {
    // The discriminating position already exists: add a sibling edge.
    *slot = WithEdge(AsNode(*slot),
                     Edge{static_cast<int16_t>(new_byte), TagLeaf(leaf)});
    return;
  }
  // Split: a new node discriminating at offset o, with the old subtree
  // and the new leaf as its two children.
  Node* n = AllocNode(static_cast<uint32_t>(o), 2);
  Edge old_edge{static_cast<int16_t>(old_byte), *slot};
  Edge new_edge{static_cast<int16_t>(new_byte), TagLeaf(leaf)};
  if (old_edge.byte < new_edge.byte) {
    n->edges[0] = old_edge;
    n->edges[1] = new_edge;
  } else {
    n->edges[0] = new_edge;
    n->edges[1] = old_edge;
  }
  *slot = n;
}

Hot::Node* Hot::WithoutEdge(Node* n, int byte) {
  Node* smaller = AllocNode(n->offset, static_cast<uint16_t>(n->count - 1));
  uint16_t pos = 0;
  while (n->edges[pos].byte != byte) pos++;
  std::copy(n->edges, n->edges + pos, smaller->edges);
  std::copy(n->edges + pos + 1, n->edges + n->count, smaller->edges + pos);
  FreeNode(n);
  return smaller;
}

bool Hot::EraseRec(Child* slot, std::string_view key) {
  Child c = *slot;
  if (IsLeaf(c)) {
    Leaf* leaf = AsLeaf(c);
    if (*leaf->key != key) return false;
    delete leaf;
    memory_ -= sizeof(Leaf);
    size_--;
    *slot = nullptr;  // the caller unlinks the edge
    return true;
  }
  Node* n = AsNode(c);
  int b = ByteAt(key, n->offset);
  Edge* e = const_cast<Edge*>(FindEdge(n, b));
  if (!e) return false;
  if (!EraseRec(&e->child, key)) return false;
  if (e->child == nullptr) {
    Node* smaller = WithoutEdge(n, b);
    if (smaller->count == 1) {
      // Single remaining edge: the child subtree replaces this node
      // (offsets along the path stay strictly increasing).
      *slot = smaller->edges[0].child;
      FreeNode(smaller);
    } else {
      *slot = smaller;
    }
  }
  return true;
}

bool Hot::Erase(std::string_view key) {
  if (!root_) return false;
  return EraseRec(&root_, key);
}

bool Hot::Lookup(std::string_view key, uint64_t* value) const {
  if (!root_) return false;
  Child c = root_;
  while (!IsLeaf(c)) {
    const Node* n = AsNode(c);
    const Edge* exact = FindEdge(n, ByteAt(key, n->offset));
    if (!exact) return false;
    c = exact->child;
  }
  const Leaf* leaf = AsLeaf(c);
  if (*leaf->key != key) return false;  // full-key verification
  if (value) *value = leaf->value;
  return true;
}

size_t Hot::EmitAll(Child c, size_t count, size_t produced,
                    std::vector<uint64_t>* out) const {
  if (produced >= count) return produced;
  if (IsLeaf(c)) {
    if (out) out->push_back(AsLeaf(c)->value);
    return produced + 1;
  }
  const Node* n = AsNode(c);
  for (uint16_t i = 0; i < n->count; i++) {
    produced = EmitAll(n->edges[i].child, count, produced, out);
    if (produced >= count) break;
  }
  return produced;
}

size_t Hot::EmitGE(Child c, std::string_view start, size_t count,
                   size_t produced, std::vector<uint64_t>* out) const {
  if (produced >= count) return produced;
  if (IsLeaf(c)) {
    const Leaf* leaf = AsLeaf(c);
    if (std::string_view(*leaf->key) >= start) {
      if (out) out->push_back(leaf->value);
      produced++;
    }
    return produced;
  }
  const Node* n = AsNode(c);
  // All keys in this subtree share their bytes below n->offset (Patricia
  // invariant), so one representative decides the comparison up to there.
  const std::string& rep = *MinLeaf(c)->key;
  for (size_t i = 0; i < n->offset; i++) {
    int sb = ByteAt(start, i);
    int rb = ByteAt(rep, i);
    if (sb < rb) return EmitAll(c, count, produced, out);
    if (sb > rb) return produced;  // whole subtree < start
  }
  int sb = ByteAt(start, n->offset);
  for (uint16_t i = 0; i < n->count; i++) {
    const Edge& e = n->edges[i];
    if (e.byte < sb) continue;
    if (e.byte == sb)
      produced = EmitGE(e.child, start, count, produced, out);
    else
      produced = EmitAll(e.child, count, produced, out);
    if (produced >= count) break;
  }
  return produced;
}

size_t Hot::Scan(std::string_view start, size_t count,
                 std::vector<uint64_t>* out) const {
  if (!root_) return 0;
  return EmitGE(root_, start, count, 0, out);
}

void Hot::DepthStats(Child c, size_t depth, size_t* total,
                     size_t* leaves) const {
  if (IsLeaf(c)) {
    *total += depth;
    *leaves += 1;
    return;
  }
  const Node* n = AsNode(c);
  for (uint16_t i = 0; i < n->count; i++)
    DepthStats(n->edges[i].child, depth + 1, total, leaves);
}

double Hot::AverageLeafDepth() const {
  if (!root_) return 0;
  size_t total = 0, leaves = 0;
  DepthStats(root_, 0, &total, &leaves);
  return leaves == 0 ? 0 : static_cast<double>(total) /
                               static_cast<double>(leaves);
}

std::string Hot::CheckRec(Child c, uint32_t min_offset) const {
  if (IsLeaf(c)) return "";
  const Node* n = AsNode(c);
  if (n->count < 2) return "node with fewer than two children";
  for (uint16_t i = 0; i + 1 < n->count; i++)
    if (!(n->edges[i].byte < n->edges[i + 1].byte))
      return "children out of order";
  if (min_offset > 0 && n->offset < min_offset)
    return "offsets not increasing along path";
  // Subtree agreement: every child subtree's min leaf must agree with the
  // node's min leaf on all bytes below n->offset, and carry the edge byte
  // at n->offset.
  const std::string& rep = *MinLeaf(c)->key;
  for (uint16_t i = 0; i < n->count; i++) {
    const Edge& e = n->edges[i];
    const std::string& ck = *MinLeaf(e.child)->key;
    for (size_t j = 0; j < n->offset; j++)
      if (ByteAt(ck, j) != ByteAt(rep, j))
        return "subtree bytes disagree below discriminating offset";
    if (ByteAt(ck, n->offset) != e.byte)
      return "edge byte does not match subtree keys";
    std::string err = CheckRec(e.child, n->offset + 1);
    if (!err.empty()) return err;
  }
  return "";
}

std::string Hot::CheckInvariants() const {
  if (!root_) return "";
  return CheckRec(root_, 0);
}

}  // namespace hope
