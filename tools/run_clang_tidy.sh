#!/usr/bin/env bash
# clang-tidy gate with a tracked suppression baseline.
#
#   tools/run_clang_tidy.sh <build-dir> [--update-baseline] [clang-tidy]
#
# Runs clang-tidy (checks from .clang-tidy) over every first-party .cc
# under src/ bench/ tools/ examples/ tests/fuzz/, using <build-dir>'s
# compile_commands.json (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON).
# Findings are normalized to `file:check` lines — line numbers dropped so
# edits elsewhere in a file don't churn the comparison — and diffed
# against tools/clang_tidy_baseline.txt:
#
#   * finding not in baseline  -> FAIL (new issue: fix it, or accept it
#                                 via --update-baseline and justify in
#                                 the commit message)
#   * baseline entry unmatched -> WARN (stale entry: shrink the baseline
#                                 when convenient; kept non-fatal so a
#                                 clang upgrade that fixes checks doesn't
#                                 break CI)
#
# Exit: 0 clean/baseline-covered, 1 new findings, 2 usage/environment.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
baseline="$repo_root/tools/clang_tidy_baseline.txt"

build_dir=""
update=0
tidy_bin="clang-tidy"
for arg in "$@"; do
  case "$arg" in
    --update-baseline) update=1 ;;
    -*) echo "run_clang_tidy: unknown flag $arg" >&2; exit 2 ;;
    *)
      if [[ -z "$build_dir" ]]; then build_dir="$arg"; else tidy_bin="$arg"; fi
      ;;
  esac
done
if [[ -z "$build_dir" ]]; then
  echo "usage: run_clang_tidy.sh <build-dir> [--update-baseline] [clang-tidy]" >&2
  exit 2
fi
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "run_clang_tidy: $build_dir/compile_commands.json not found" \
       "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)" >&2
  exit 2
fi
if ! command -v "$tidy_bin" >/dev/null 2>&1; then
  echo "run_clang_tidy: $tidy_bin not found" >&2
  exit 2
fi

# tests/fuzz is in scope: the fuzz targets parse untrusted layouts
# themselves, so the bugprone-* checks apply to them as much as to src/.
mapfile -t sources < <(cd "$repo_root" &&
  find src bench tools examples tests/fuzz -name '*.cc' 2>/dev/null | sort)
if [[ "${#sources[@]}" -eq 0 ]]; then
  echo "run_clang_tidy: no sources found under $repo_root" >&2
  exit 2
fi

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT
raw="$work/raw.txt"

(cd "$repo_root" &&
 "$tidy_bin" -p "$build_dir" --quiet "${sources[@]}" 2>"$work/stderr.txt" \
   > "$raw")
# clang-tidy exits non-zero on findings; real invocation failures leave
# an empty report with diagnostics on stderr.
if [[ ! -s "$raw" ]] && grep -q "error:" "$work/stderr.txt"; then
  echo "run_clang_tidy: clang-tidy failed to run:" >&2
  cat "$work/stderr.txt" >&2
  exit 2
fi

# `path/file.cc:12:3: warning: ... [check-name]` -> `path/file.cc:check-name`
findings="$work/findings.txt"
sed -n \
  's|^\([^: ]*\):[0-9]*:[0-9]*: \(warning\|error\): .*\[\([a-z0-9.,-]*\)\]$|\1:\3|p' \
  "$raw" | sed "s|^$repo_root/||" | sort -u > "$findings"

if [[ "$update" -eq 1 ]]; then
  { sed -n '/^#/p' "$baseline"; cat "$findings"; } > "$baseline.tmp"
  mv "$baseline.tmp" "$baseline"
  echo "run_clang_tidy: baseline updated ($(wc -l < "$findings") entries)"
  exit 0
fi

grep -v '^#' "$baseline" | sed '/^$/d' | sort -u > "$work/baseline.txt"

new="$(comm -23 "$findings" "$work/baseline.txt")"
stale="$(comm -13 "$findings" "$work/baseline.txt")"

if [[ -n "$stale" ]]; then
  echo "run_clang_tidy: stale baseline entries (no longer reported):"
  printf '  %s\n' $stale
fi
if [[ -n "$new" ]]; then
  echo "run_clang_tidy: NEW findings (not in baseline):"
  printf '  %s\n' $new
  echo
  echo "Full diagnostics:"
  cat "$raw"
  exit 1
fi
echo "run_clang_tidy: OK ($(wc -l < "$findings") finding(s), all baselined)"
exit 0
