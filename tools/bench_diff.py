#!/usr/bin/env python3
"""Bench trend diffing: compare two BENCH_*.json results and fail on
regressions beyond a threshold.

Usage:
  bench_diff.py BASELINE CANDIDATE [--cpr-threshold F] [--latency-threshold F]
  bench_diff.py HISTORY_DIR CANDIDATE --history [...]

BASELINE and CANDIDATE are either two JSON files produced by the bench
binaries' --json mode (bench/bench_common.h JsonReport: {"bench": ...,
"rows": [...]}), or two directories, in which case every BENCH_*.json
present in BOTH is compared (files only in one side are reported but do
not fail the run — new benches appear, retired ones disappear).

Rows are matched across files by a fixed whitelist of identity fields
(series / scheme / phase / op / shard counts); volatile descriptive
strings such as shard_epochs are neither identity nor metrics, so a
benign rebuild-count shift cannot un-match a row and silently exempt
its CPR from the gate. Within matched rows, only recognized metric
families are compared:

  higher is better:  *cpr* (compression rate), *gain*,
                     *ops_per_sec and *chars_per_sec* (throughput — the
                     latter is the encode hot path's Mchars/s series)
  lower is better:   ns_per_* and *_ns (latency), cycles_per_* (cycle
                     cost of the encode hot path; machine-bound, rides
                     the latency threshold), *_spread (load imbalance),
                     *_failures / *_violations / *_rejects
                     (correctness — any increase fails, even from a
                     zero baseline), telemetry_* (subsystem health
                     counters from the unified registry)

Latency and *_spread take separate thresholds: spread is a behavioral
metric (deterministic given the workload), while absolute latency is
machine-bound — when comparing runs from DIFFERENT machines (e.g. a CI
runner against a committed developer-machine baseline) pass
`--latency-threshold inf` to disable the latency gate rather than
training people to ignore spurious red. Throughput
(--throughput-threshold) is machine-bound too, but far less volatile
than tail percentiles, so it gets its own threshold (and `inf` opt-out)
rather than riding the latency one. Correctness counters take no
threshold: a self-check that started failing is a bug, not a trend.
Telemetry health rates (e.g. telemetry_lookup_slow_paths_per_mop,
telemetry_ebr_pending) are legitimate but load-bearing side channels:
they get a loose dedicated threshold (--telemetry-threshold, default
0.5) — except telemetry_*_ns fields, which are latencies and ride the
latency threshold, and telemetry_*_rejects / telemetry_*check_failures,
which are correctness and take none.

With --history, BASELINE is instead a directory of dated run
subdirectories (runs/2026-08-01/BENCH_*.json, ...); the candidate is
gated against the LATEST run (lexicographically last subdirectory, so
ISO dates sort chronologically) and a best/worst/latest summary across
the whole history is printed per bench file. Exit 2 if the history
directory holds no run subdirectories.

Everything else (epochs, rebuild counts, router versions, lookup checks)
is informational and ignored here. A regression is a relative change in
the bad direction beyond the family's threshold; CPR is nearly
deterministic so its default gate is tight (5%), latency runs on shared
CI hardware so its default is loose (25%, `inf` to disable).

Exit codes: 0 = no regressions, 1 = at least one regression,
2 = usage / malformed input.
"""

import argparse
import json
import math
import sys
from pathlib import Path

# Fields that identify a row rather than measure it. A fixed whitelist,
# not "all strings": volatile descriptive strings (shard_epochs and the
# like) change benignly run-to-run, and folding them into identity would
# un-match the row and silently skip its metric comparison.
ID_FIELDS = {
    "series", "scheme", "phase", "op", "num_shards", "victim_shard",
    "mix_fraction_b", "mode",
}


def is_latency(name: str) -> bool:
    # cycles_per_* (encode hot path cycle cost) is machine-bound the same
    # way wall-clock latency is, so it rides the latency threshold.
    return (name.startswith("ns_per_") or name.endswith("_ns")
            or name.startswith("cycles_per_"))


def is_throughput(name: str) -> bool:
    # *chars_per_sec* covers the encode hot path's mchars_per_sec series
    # (including batch-suffixed variants like mchars_per_sec_b32).
    return name.endswith("ops_per_sec") or "chars_per_sec" in name


def is_correctness(name: str) -> bool:
    # *_rejects rides along: a rebuild the manager refused to publish
    # (validation round-trip failed, compression got worse) is a
    # correctness event, not a trend.
    return (name.endswith("_failures") or name.endswith("_violations")
            or name.endswith("_rejects"))


def is_telemetry(name: str) -> bool:
    return name.startswith("telemetry_")


def is_lower_better(name: str) -> bool:
    return (is_latency(name) or is_correctness(name)
            or is_telemetry(name) or name.endswith("_spread"))


def is_higher_better(name: str) -> bool:
    return "cpr" in name or "gain" in name or is_throughput(name)


def row_key(row: dict) -> tuple:
    return tuple((field, row[field]) for field in sorted(row)
                 if field in ID_FIELDS)


def load_report(path: Path) -> dict:
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        raise SystemExit(2)
    if not isinstance(report, dict) or not isinstance(report.get("rows"), list):
        print(f"error: {path} is not a bench report (no rows[])",
              file=sys.stderr)
        raise SystemExit(2)
    return report


def metric_value(value):
    """JsonReport emits null for non-finite values; treat those (and
    non-numbers) as unavailable."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    if not math.isfinite(value):
        return None
    return float(value)


def diff_reports(name, baseline, candidate, cpr_thr, lat_thr, spread_thr,
                 tput_thr, tel_thr):
    """Returns (regressions, notes): regressions are formatted lines."""
    regressions, notes = [], []
    # Different run configurations (keys per dataset, full-scale flag)
    # measure different workloads; comparing them would report the
    # config delta as a perf regression. Skip, loudly.
    for cfg in ("keys", "full_scale", "bench"):
        if baseline.get(cfg) != candidate.get(cfg):
            notes.append(
                f"{name}: skipped — run config differs "
                f"({cfg}: {baseline.get(cfg)} vs {candidate.get(cfg)})")
            return regressions, notes
    base_rows = {}
    for row in baseline["rows"]:
        base_rows[row_key(row)] = row

    matched = 0
    for row in candidate["rows"]:
        key = row_key(row)
        base = base_rows.get(key)
        if base is None:
            notes.append(f"{name}: new row {dict(key)}")
            continue
        matched += 1
        for field, value in row.items():
            lower = is_lower_better(field)
            higher = is_higher_better(field)
            if not lower and not higher:
                continue
            if field in ID_FIELDS:
                continue
            new = metric_value(value)
            old = metric_value(base.get(field))
            if new is None or old is None:
                continue
            # Correctness counters are gated BEFORE the old == 0 skip:
            # the interesting baseline for a failure counter is exactly
            # zero, and any increase is a regression, thresholds be
            # damned.
            if is_correctness(field):
                if new > old:
                    regressions.append(
                        f"{name}: {dict(key)} {field}: {old:g} -> "
                        f"{new:g} (correctness counter increased)")
                continue
            if old == 0:
                continue
            change = (new - old) / abs(old)
            if lower:
                # Latency check first: telemetry_*_ns fields are
                # latencies that happen to come from the registry.
                if is_latency(field):
                    threshold = lat_thr
                elif is_telemetry(field):
                    threshold = tel_thr
                else:
                    threshold = spread_thr
            else:
                threshold = tput_thr if is_throughput(field) else cpr_thr
            if math.isinf(threshold):
                continue
            bad = change > threshold if lower else change < -threshold
            if bad:
                direction = "up" if change > 0 else "down"
                regressions.append(
                    f"{name}: {dict(key)} {field}: {old:g} -> {new:g} "
                    f"({change * 100:+.1f}% {direction}, "
                    f"threshold {threshold * 100:.0f}%)")
    if matched == 0:
        notes.append(f"{name}: no rows matched between baseline and "
                     "candidate (identity fields changed?)")
    return regressions, notes


def collect_pairs(baseline: Path, candidate: Path):
    if baseline.is_dir() != candidate.is_dir():
        print("error: BASELINE and CANDIDATE must both be files or both "
              "be directories", file=sys.stderr)
        raise SystemExit(2)
    if not baseline.is_dir():
        return [(baseline.name, baseline, candidate)], []
    base_files = {p.name: p for p in sorted(baseline.glob("BENCH_*.json"))}
    cand_files = {p.name: p for p in sorted(candidate.glob("BENCH_*.json"))}
    notes = []
    for only in sorted(set(base_files) - set(cand_files)):
        notes.append(f"{only}: present only in baseline")
    for only in sorted(set(cand_files) - set(base_files)):
        notes.append(f"{only}: present only in candidate")
    shared = sorted(set(base_files) & set(cand_files))
    if not shared:
        print("error: no shared BENCH_*.json between the two directories",
              file=sys.stderr)
        raise SystemExit(2)
    return [(n, base_files[n], cand_files[n]) for n in shared], notes


def gated_fields(report: dict):
    """(row_key, field) pairs of every gated metric in a report."""
    for row in report["rows"]:
        key = row_key(row)
        for field, value in row.items():
            if field in ID_FIELDS:
                continue
            if not (is_lower_better(field) or is_higher_better(field)):
                continue
            if metric_value(value) is None:
                continue
            yield key, field


def history_trend(history: Path):
    """Prints a best/worst/latest line per gated metric across the dated
    run subdirectories of `history` and returns the latest run's
    directory (the gate baseline). Exits 2 on an empty history."""
    runs = sorted(p for p in history.iterdir() if p.is_dir())
    if not runs:
        print(f"error: history directory {history} has no run "
              "subdirectories", file=sys.stderr)
        raise SystemExit(2)
    latest = runs[-1]
    print(f"history: {len(runs)} run(s), {runs[0].name} .. {latest.name}, "
          f"gating against {latest.name}")
    # Metric series across runs, seeded from the latest run's shape so
    # retired rows do not clutter the trend.
    for bench_file in sorted(latest.glob("BENCH_*.json")):
        latest_report = load_report(bench_file)
        series = {}  # (key, field) -> [values in run order]
        for run in runs:
            path = run / bench_file.name
            if not path.is_file():
                continue
            report = load_report(path)
            rows = {row_key(r): r for r in report["rows"]}
            for key, field in gated_fields(latest_report):
                value = metric_value(rows.get(key, {}).get(field))
                if value is not None:
                    series.setdefault((key, field), []).append(value)
        for (key, field), values in series.items():
            if len(values) < 2:
                continue
            best = max(values) if is_higher_better(field) else min(values)
            worst = min(values) if is_higher_better(field) else max(values)
            print(f"trend {bench_file.name}: {dict(key)} {field}: "
                  f"best {best:g} worst {worst:g} latest {values[-1]:g} "
                  f"({len(values)} runs)")
    return latest


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Diff two bench results; exit 1 on regressions.")
    parser.add_argument("baseline", type=Path,
                        help="baseline report/dir; with --history, a "
                             "directory of dated run subdirectories")
    parser.add_argument("candidate", type=Path)
    parser.add_argument("--cpr-threshold", type=float, default=0.05,
                        help="max relative CPR/gain drop (default 0.05)")
    parser.add_argument("--latency-threshold", type=float, default=0.25,
                        help="max relative latency (ns_per_*, *_ns) "
                             "increase (default 0.25; 'inf' disables — "
                             "use when baseline and candidate ran on "
                             "different machines)")
    parser.add_argument("--spread-threshold", type=float, default=0.25,
                        help="max relative *_spread increase "
                             "(default 0.25)")
    parser.add_argument("--throughput-threshold", type=float, default=0.25,
                        help="max relative *ops_per_sec drop (default "
                             "0.25; 'inf' disables)")
    parser.add_argument("--telemetry-threshold", type=float, default=0.5,
                        help="max relative increase of telemetry_* health "
                             "rates (default 0.5; 'inf' disables; "
                             "telemetry latencies/correctness counters "
                             "ride their own families)")
    parser.add_argument("--history", action="store_true",
                        help="treat BASELINE as a directory of dated run "
                             "subdirectories: print a best/worst/latest "
                             "trend and gate against the latest run")
    args = parser.parse_args()
    if (args.cpr_threshold < 0 or args.latency_threshold < 0
            or args.spread_threshold < 0 or args.throughput_threshold < 0
            or args.telemetry_threshold < 0):
        parser.error("thresholds must be non-negative")

    notes = []
    baseline = args.baseline
    if args.history:
        if not baseline.is_dir():
            print(f"error: --history baseline {baseline} is not a "
                  "directory", file=sys.stderr)
            return 2
        baseline = history_trend(baseline)

    pairs, pair_notes = collect_pairs(baseline, args.candidate)
    notes += pair_notes
    regressions = []
    for name, base_path, cand_path in pairs:
        r, n = diff_reports(name, load_report(base_path),
                            load_report(cand_path),
                            args.cpr_threshold, args.latency_threshold,
                            args.spread_threshold, args.throughput_threshold,
                            args.telemetry_threshold)
        regressions += r
        notes += n

    for note in notes:
        print(f"note: {note}")
    if regressions:
        print(f"{len(regressions)} regression(s):")
        for line in regressions:
            print(f"  REGRESSION {line}")
        return 1
    print(f"ok: {len(pairs)} report(s) compared, no regressions beyond "
          f"thresholds (cpr {args.cpr_threshold:.0%}, "
          f"latency {args.latency_threshold:.0%}, "
          f"spread {args.spread_threshold:.0%}, "
          f"throughput {args.throughput_threshold:.0%}, "
          f"telemetry {args.telemetry_threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
