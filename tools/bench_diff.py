#!/usr/bin/env python3
"""Bench trend diffing: compare two BENCH_*.json results and fail on
regressions beyond a threshold.

Usage:
  bench_diff.py BASELINE CANDIDATE [--cpr-threshold F] [--latency-threshold F]

BASELINE and CANDIDATE are either two JSON files produced by the bench
binaries' --json mode (bench/bench_common.h JsonReport: {"bench": ...,
"rows": [...]}), or two directories, in which case every BENCH_*.json
present in BOTH is compared (files only in one side are reported but do
not fail the run — new benches appear, retired ones disappear).

Rows are matched across files by a fixed whitelist of identity fields
(series / scheme / phase / shard counts); volatile descriptive strings
such as shard_epochs are neither identity nor metrics, so a benign
rebuild-count shift cannot un-match a row and silently exempt its CPR
from the gate. Within matched rows, only recognized metric families are
compared:

  higher is better:  *cpr* (compression rate), *gain*
  lower is better:   ns_per_* (latency), *_spread (load imbalance)

ns_per_* and *_spread take separate thresholds: spread is a behavioral
metric (deterministic given the workload), while absolute latency is
machine-bound — when comparing runs from DIFFERENT machines (e.g. a CI
runner against a committed developer-machine baseline) pass
`--latency-threshold inf` to disable the latency gate rather than
training people to ignore spurious red.

Everything else (epochs, rebuild counts, router versions, lookup checks)
is informational and ignored here. A regression is a relative change in
the bad direction beyond the family's threshold; CPR is nearly
deterministic so its default gate is tight (5%), latency runs on shared
CI hardware so its default is loose (25%, `inf` to disable).

Exit codes: 0 = no regressions, 1 = at least one regression,
2 = usage / malformed input.
"""

import argparse
import json
import math
import sys
from pathlib import Path

# Fields that identify a row rather than measure it. A fixed whitelist,
# not "all strings": volatile descriptive strings (shard_epochs and the
# like) change benignly run-to-run, and folding them into identity would
# un-match the row and silently skip its metric comparison.
ID_FIELDS = {
    "series", "scheme", "phase", "num_shards", "victim_shard",
    "mix_fraction_b",
}


def is_lower_better(name: str) -> bool:
    return name.startswith("ns_per_") or name.endswith("_spread")


def is_higher_better(name: str) -> bool:
    return "cpr" in name or "gain" in name


def row_key(row: dict) -> tuple:
    return tuple((field, row[field]) for field in sorted(row)
                 if field in ID_FIELDS)


def load_report(path: Path) -> dict:
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        raise SystemExit(2)
    if not isinstance(report, dict) or not isinstance(report.get("rows"), list):
        print(f"error: {path} is not a bench report (no rows[])",
              file=sys.stderr)
        raise SystemExit(2)
    return report


def metric_value(value):
    """JsonReport emits null for non-finite values; treat those (and
    non-numbers) as unavailable."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    if not math.isfinite(value):
        return None
    return float(value)


def diff_reports(name, baseline, candidate, cpr_thr, lat_thr, spread_thr):
    """Returns (regressions, notes): regressions are formatted lines."""
    regressions, notes = [], []
    # Different run configurations (keys per dataset, full-scale flag)
    # measure different workloads; comparing them would report the
    # config delta as a perf regression. Skip, loudly.
    for cfg in ("keys", "full_scale", "bench"):
        if baseline.get(cfg) != candidate.get(cfg):
            notes.append(
                f"{name}: skipped — run config differs "
                f"({cfg}: {baseline.get(cfg)} vs {candidate.get(cfg)})")
            return regressions, notes
    base_rows = {}
    for row in baseline["rows"]:
        base_rows[row_key(row)] = row

    matched = 0
    for row in candidate["rows"]:
        key = row_key(row)
        base = base_rows.get(key)
        if base is None:
            notes.append(f"{name}: new row {dict(key)}")
            continue
        matched += 1
        for field, value in row.items():
            lower = is_lower_better(field)
            higher = is_higher_better(field)
            if not lower and not higher:
                continue
            if field in ID_FIELDS:
                continue
            new = metric_value(value)
            old = metric_value(base.get(field))
            if new is None or old is None or old == 0:
                continue
            change = (new - old) / abs(old)
            if lower:
                threshold = (lat_thr if field.startswith("ns_per_")
                             else spread_thr)
            else:
                threshold = cpr_thr
            if math.isinf(threshold):
                continue
            bad = change > threshold if lower else change < -threshold
            if bad:
                direction = "up" if change > 0 else "down"
                regressions.append(
                    f"{name}: {dict(key)} {field}: {old:g} -> {new:g} "
                    f"({change * 100:+.1f}% {direction}, "
                    f"threshold {threshold * 100:.0f}%)")
    if matched == 0:
        notes.append(f"{name}: no rows matched between baseline and "
                     "candidate (identity fields changed?)")
    return regressions, notes


def collect_pairs(baseline: Path, candidate: Path):
    if baseline.is_dir() != candidate.is_dir():
        print("error: BASELINE and CANDIDATE must both be files or both "
              "be directories", file=sys.stderr)
        raise SystemExit(2)
    if not baseline.is_dir():
        return [(baseline.name, baseline, candidate)], []
    base_files = {p.name: p for p in sorted(baseline.glob("BENCH_*.json"))}
    cand_files = {p.name: p for p in sorted(candidate.glob("BENCH_*.json"))}
    notes = []
    for only in sorted(set(base_files) - set(cand_files)):
        notes.append(f"{only}: present only in baseline")
    for only in sorted(set(cand_files) - set(base_files)):
        notes.append(f"{only}: present only in candidate")
    shared = sorted(set(base_files) & set(cand_files))
    if not shared:
        print("error: no shared BENCH_*.json between the two directories",
              file=sys.stderr)
        raise SystemExit(2)
    return [(n, base_files[n], cand_files[n]) for n in shared], notes


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Diff two bench results; exit 1 on regressions.")
    parser.add_argument("baseline", type=Path)
    parser.add_argument("candidate", type=Path)
    parser.add_argument("--cpr-threshold", type=float, default=0.05,
                        help="max relative CPR/gain drop (default 0.05)")
    parser.add_argument("--latency-threshold", type=float, default=0.25,
                        help="max relative ns_per_* increase (default "
                             "0.25; 'inf' disables — use when baseline "
                             "and candidate ran on different machines)")
    parser.add_argument("--spread-threshold", type=float, default=0.25,
                        help="max relative *_spread increase "
                             "(default 0.25)")
    args = parser.parse_args()
    if (args.cpr_threshold < 0 or args.latency_threshold < 0
            or args.spread_threshold < 0):
        parser.error("thresholds must be non-negative")

    pairs, notes = collect_pairs(args.baseline, args.candidate)
    regressions = []
    for name, base_path, cand_path in pairs:
        r, n = diff_reports(name, load_report(base_path),
                            load_report(cand_path),
                            args.cpr_threshold, args.latency_threshold,
                            args.spread_threshold)
        regressions += r
        notes += n

    for note in notes:
        print(f"note: {note}")
    if regressions:
        print(f"{len(regressions)} regression(s):")
        for line in regressions:
            print(f"  REGRESSION {line}")
        return 1
    print(f"ok: {len(pairs)} report(s) compared, no regressions beyond "
          f"thresholds (cpr {args.cpr_threshold:.0%}, "
          f"latency {args.latency_threshold:.0%}, "
          f"spread {args.spread_threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
