#!/usr/bin/env python3
"""Coverage floor gate: parses llvm-cov export JSON or a directory of
gcov --json-format output and enforces a per-file line-coverage floor on
the gated (untrusted-input) files. Used by tools/coverage_report.sh.

Exit: 0 floor met, 1 a gated file is below the floor or missing from
the report, 2 usage errors.
"""
import argparse
import glob
import gzip
import json
import os
import sys


def load_llvm(path):
    """llvm-cov export -summary-only: {data: [{files: [{filename,
    summary: {lines: {count, covered, percent}}}]}]}."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for data in doc.get("data", []):
        for fe in data.get("files", []):
            lines = fe.get("summary", {}).get("lines", {})
            count, covered = lines.get("count", 0), lines.get("covered", 0)
            out[os.path.abspath(fe["filename"])] = (covered, count)
    return out


def load_gcov(dirname):
    """Directory of gcov JSON (possibly .gz): one doc per object file,
    {files: [{file, lines: [{line_number, count}]}]}. The same source
    appears once per including object file; a line counts as covered if
    any object executed it."""
    hits = {}  # abspath -> {line: max_count}
    for path in glob.glob(os.path.join(dirname, "*.gcov.json.gz")) + \
            glob.glob(os.path.join(dirname, "*.gcov.json")):
        opener = gzip.open if path.endswith(".gz") else open
        try:
            with opener(path, "rt") as f:
                doc = json.load(f)
        except (OSError, ValueError):
            continue
        for fe in doc.get("files", []):
            name = os.path.abspath(fe.get("file", ""))
            per = hits.setdefault(name, {})
            for ln in fe.get("lines", []):
                n = ln.get("line_number")
                per[n] = max(per.get(n, 0), ln.get("count", 0))
    return {name: (sum(1 for c in per.values() if c > 0), len(per))
            for name, per in hits.items()}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--format", choices=["llvm", "gcov"], required=True)
    ap.add_argument("report")
    ap.add_argument("--floor", type=float, default=80.0)
    ap.add_argument("--repo-root", required=True)
    ap.add_argument("gated", nargs="+")
    args = ap.parse_args()

    cov = load_llvm(args.report) if args.format == "llvm" \
        else load_gcov(args.report)

    # Informational: everything under src/.
    root = os.path.abspath(args.repo_root)
    print(f"{'file':<44} {'lines':>7} {'covered':>8} {'pct':>7}")
    for name in sorted(cov):
        if not name.startswith(os.path.join(root, "src")):
            continue
        covered, count = cov[name]
        pct = 100.0 * covered / count if count else 0.0
        print(f"{os.path.relpath(name, root):<44} {count:>7} "
              f"{covered:>8} {pct:>6.1f}%")

    failed = False
    print(f"\ngate: floor {args.floor:.0f}% on untrusted-input files")
    for rel in args.gated:
        name = os.path.abspath(os.path.join(root, rel))
        if name not in cov or cov[name][1] == 0:
            print(f"  FAIL {rel}: not in the coverage report")
            failed = True
            continue
        covered, count = cov[name]
        pct = 100.0 * covered / count
        mark = "ok  " if pct >= args.floor else "FAIL"
        if pct < args.floor:
            failed = True
        print(f"  {mark} {rel}: {pct:.1f}% ({covered}/{count})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
