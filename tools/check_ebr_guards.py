#!/usr/bin/env python3
"""Lexical protocol linter for the repo's epoch-based-reclamation (EBR)
contract. Clang's thread-safety analysis machine-checks the mutex layer;
this tool machine-checks the complementary lock-free layer, which TSA
cannot see:

Rule 1 (guard domination): every raw `.load(` of an EBR-published
  atomic pointer field must be lexically dominated by a live
  `ebr::EpochReclaimer::Guard` — i.e. a Guard declared earlier in the
  same scope or an enclosing scope that is still open at the load. A
  load outside a guard can observe a pointer whose pointee is freed the
  instant the publisher's grace period elapses.

  EBR-published fields are discovered, not configured: any field whose
  declaration is tagged with the no-op `HOPE_EBR_PUBLISHED` macro
  (common/thread_annotations.h) is tracked by name across the tree.

Rule 2 (no retire under reader-blocking locks): `Retire(` /
  `RetireDelete(` must not be called while a shared-mutex RAII lock
  (WriterLock / ReaderLock / std::shared_lock / a std::unique_lock over
  a std::shared_mutex) is lexically in scope. Retire may run deferred
  destructors inline once the grace period has elapsed; doing that while
  holding a lock the reader fast path blocks on turns reclamation
  hiccups into serving-tail spikes — and a destructor that itself takes
  a shard lock into a deadlock. (Plain `Mutex` sections are exempt:
  readers never block on them by design.)

Both rules are lexical (single function body, brace tracking after
comment/string stripping) — deliberately so: the protocol in this
codebase is that every load site pins its own guard rather than relying
on a caller's, which keeps the contract auditable function by function.

Suppression: a site that is safe for a reason the linter cannot see
carries `// ebr-exempt: <reason>` on the same line or the line(s)
immediately above. The reason is mandatory; a bare `ebr-exempt` fails.

Usage:
  check_ebr_guards.py [--exclude SUBSTR ...] [--list-fields] PATH ...

PATH arguments are files or directories (searched recursively for
.h/.hpp/.cc/.cpp). Exit status: 0 clean, 1 violations, 2 usage error.
"""

import argparse
import os
import re
import sys

CXX_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")

# `HOPE_EBR_PUBLISHED std::atomic<const T*> name_{...};` possibly
# wrapped across lines; the marker macro expands to nothing in C++.
FIELD_DECL_RE = re.compile(
    r"HOPE_EBR_PUBLISHED\s+(?:mutable\s+)?std::atomic<[^;{]*?>\s*"
    r"(?P<name>\w+)\s*[{;=(]",
    re.S,
)

# `ebr::EpochReclaimer::Guard guard(reclaimer);` (any qualification).
GUARD_DECL_RE = re.compile(r"\b(?:\w+\s*::\s*)*Guard\s+\w+\s*[({]")

# RAII locks readers block on (rule 2). Plain MutexLock/UniqueLock are
# deliberately absent.
SHARED_LOCK_DECL_RE = re.compile(
    r"\b(?:WriterLock|ReaderLock)\s+\w+\s*[({]"
    r"|std::shared_lock\s*<"
    r"|std::unique_lock\s*<\s*std::shared_mutex\s*>"
)

RETIRE_CALL_RE = re.compile(r"\b(?:Retire|RetireDelete)\s*\(")

EXEMPT_RE = re.compile(r"//\s*ebr-exempt:\s*(?P<reason>.*)")
EXEMPT_BARE_RE = re.compile(r"//\s*ebr-exempt\b")


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line
    structure so line numbers and brace tracking stay accurate."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            elif c == "\n":  # unterminated; keep structure
                state = "code"
            out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def collect_ebr_fields(files):
    """Names of every HOPE_EBR_PUBLISHED-tagged atomic field, with one
    declaration site each (for --list-fields)."""
    fields = {}
    for path in files:
        raw = read_file(path)
        code = strip_comments_and_strings(raw)
        for m in FIELD_DECL_RE.finditer(code):
            line = code.count("\n", 0, m.start()) + 1
            fields.setdefault(m.group("name"), (path, line))
    return fields


def read_file(path):
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        return f.read()


def exemption_for(raw_lines, lineno):
    """Exempt reason for 1-based lineno: the site's own line, the other
    lines of the enclosing statement (a `.load(` may sit on a wrapped
    continuation line), and the contiguous run of pure-comment lines
    immediately above that statement. Returns (exempt, reason,
    bad_site) where bad_site marks a reason-less ebr-exempt."""
    # Walk up to the statement start: a line is a continuation unless
    # the one above it ends a statement or opens/closes a scope.
    start = lineno - 1  # 0-based index of the site line
    while start > 0:
        prev = raw_lines[start - 1].strip()
        if prev == "" or prev.endswith((";", "{", "}", ":")) \
                or prev.startswith("#"):
            break
        start -= 1
    candidates = raw_lines[start:lineno]
    j = start - 1
    while j >= 0 and raw_lines[j].strip().startswith("//"):
        candidates.append(raw_lines[j])
        j -= 1
    for line in candidates:
        m = EXEMPT_RE.search(line)
        if m and m.group("reason").strip():
            return True, m.group("reason").strip(), False
        if EXEMPT_BARE_RE.search(line):
            return False, "", True
    return False, "", False


def lint_file(path, field_names, errors):
    raw = read_file(path)
    raw_lines = raw.split("\n")
    code = strip_comments_and_strings(raw)

    load_re = (
        re.compile(
            r"\b(?:%s)\s*\.\s*load\s*\(" % "|".join(map(re.escape, field_names))
        )
        if field_names
        else None
    )

    depth = 0
    guard_depths = []        # brace depth at each live Guard declaration
    shared_lock_depths = []  # same, for reader-blocking RAII locks

    for lineno, line in enumerate(code.split("\n"), start=1):
        # Declarations first: a guard dominates loads later on its own
        # line (a guard and a load never share a statement in practice,
        # and the guard textually precedes any same-line load).
        if GUARD_DECL_RE.search(line):
            guard_depths.append(depth)
        if SHARED_LOCK_DECL_RE.search(line):
            shared_lock_depths.append(depth)

        if load_re is not None and load_re.search(line):
            if not guard_depths:
                exempt, _, bad = exemption_for(raw_lines, lineno)
                if bad:
                    errors.append(
                        (path, lineno,
                         "ebr-exempt requires a reason: "
                         "`// ebr-exempt: <why this load is safe>`"))
                elif not exempt:
                    field = load_re.search(line).group(0).split(".")[0].strip()
                    errors.append(
                        (path, lineno,
                         "raw load of EBR-published pointer '%s' without a "
                         "live ebr Guard in scope (pointee may be reclaimed "
                         "mid-use); pin a Guard or annotate "
                         "`// ebr-exempt: <reason>`" % field))

        if RETIRE_CALL_RE.search(line) and shared_lock_depths:
            exempt, _, bad = exemption_for(raw_lines, lineno)
            if bad:
                errors.append(
                    (path, lineno,
                     "ebr-exempt requires a reason: "
                     "`// ebr-exempt: <why this retire is safe>`"))
            elif not exempt:
                errors.append(
                    (path, lineno,
                     "Retire while a reader-blocking shared-mutex lock is "
                     "in scope: reclamation may run deferred destructors "
                     "inline and stall (or deadlock) the read path; retire "
                     "after dropping the lock or annotate "
                     "`// ebr-exempt: <reason>`"))

        # Brace tracking last: a scope closing on this line closes after
        # the statements on it.
        for ch in line:
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth = max(0, depth - 1)
                while guard_depths and guard_depths[-1] >= depth:
                    guard_depths.pop()
                while shared_lock_depths and shared_lock_depths[-1] >= depth:
                    shared_lock_depths.pop()


def gather_files(paths, excludes):
    files = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
        elif os.path.isdir(p):
            for root, _, names in os.walk(p):
                for name in sorted(names):
                    if name.endswith(CXX_EXTENSIONS):
                        files.append(os.path.join(root, name))
        else:
            print("check_ebr_guards: no such path: %s" % p, file=sys.stderr)
            sys.exit(2)
    return [f for f in files if not any(x in f for x in excludes)]


def main(argv):
    ap = argparse.ArgumentParser(
        description="EBR guard-domination and retire-under-lock linter")
    ap.add_argument("paths", nargs="+", help="files or directories to lint")
    ap.add_argument("--exclude", action="append", default=[],
                    metavar="SUBSTR",
                    help="skip files whose path contains SUBSTR")
    ap.add_argument("--list-fields", action="store_true",
                    help="print discovered EBR-published fields and exit")
    args = ap.parse_args(argv)

    files = gather_files(args.paths, args.exclude)
    fields = collect_ebr_fields(files)

    if args.list_fields:
        for name, (path, line) in sorted(fields.items()):
            print("%s\t%s:%d" % (name, path, line))
        return 0

    errors = []
    for path in files:
        lint_file(path, sorted(fields), errors)

    for path, lineno, msg in errors:
        print("%s:%d: error: %s" % (path, lineno, msg))
    if errors:
        print("check_ebr_guards: %d violation(s) in %d file(s) scanned"
              % (len(errors), len(files)), file=sys.stderr)
        return 1
    print("check_ebr_guards: OK (%d files, %d EBR-published fields)"
          % (len(files), len(fields)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
