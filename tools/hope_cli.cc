// hope_cli — command-line front end for the HOPE encoder.
//
//   hope_cli build  <scheme> <keys.txt> <dict.hope> [dict_size]
//       Builds a dictionary from newline-separated sample keys and saves
//       it (schemes: single-char double-char alm 3-grams 4-grams
//       alm-improved).
//   hope_cli encode <dict.hope>
//       Reads keys from stdin, writes "<bitlen> <hex-encoding>" lines.
//   hope_cli decode <dict.hope>
//       Reads "<bitlen> <hex-encoding>" lines, writes the original keys.
//   hope_cli stats  <dict.hope> [keys.txt]
//       Prints dictionary statistics and, given keys, the compression
//       rate achieved on them.
//   hope_cli selftest
//       Builds every scheme on a synthetic sample, round-trips
//       encode/decode (including through serialize/deserialize), and
//       exits non-zero on any mismatch. Used as the CI smoke test.
//   hope_cli drift [scheme] [keys_per_phase] [shards] [mode]
//       Demo of the dynamic dictionary manager: runs a drifting Email
//       workload and prints static vs managed compression per phase.
//       With shards >= 2, runs a sharded demo instead; mode picks it:
//         localized (default) — URL drift confined to one shard's key
//             range; only that shard's epoch should move.
//         rebalance — a traffic hotspot migrates across the key range;
//             the weight-imbalance policy re-derives the router
//             boundaries online (per-phase spread + router version).
//       The shards argument must be 2..256 (0, negative, non-numeric
//       and absurd values are usage errors).
//   hope_cli serve [scheme] [keys] [workers] [shards]
//                  [--stats-file <path>] [--stats-interval <ms>]
//       Demo of the concurrent serving layer: worker threads serve
//       self-checking lookup/insert/scan mixes from a
//       ConcurrentShardedIndex while a migrating hotspot forces online
//       rebalances; prints per-phase latency percentiles + throughput
//       and exits non-zero if any consistency check fails. Numeric
//       arguments are digits-only (same contract as drift). With
//       --stats-file, a stats thread appends one JSON-lines telemetry
//       snapshot (all registered counters/gauges/histograms) every
//       --stats-interval ms (default 200).
//   hope_cli version
//       Prints the library version and the dynamic-subsystem features.
//   hope_cli --help | help
//       Prints usage and exits 0.
//
// Exit codes: 0 success, 1 runtime error (bad file, failed decode,
// selftest mismatch), 2 usage error.
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/version.h"
#include "tools/cli_args.h"
#include "datasets/datasets.h"
#include "dynamic/background_rebuilder.h"
#include "dynamic/dictionary_manager.h"
#include "dynamic/sharded_manager.h"
#include "hope/hope.h"
#include "btree/btree.h"
#include "serve/concurrent_index.h"
#include "serve/server_loop.h"
#include "telemetry/registry.h"
#include "telemetry/trace_log.h"
#include "workload/drift.h"
#include "workload/localized_drift.h"

namespace {

using hope::Hope;
using hope::Scheme;

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: hope_cli build <scheme> <keys.txt> <dict.hope> "
               "[dict_size]\n"
               "       hope_cli encode <dict.hope>   (keys on stdin)\n"
               "       hope_cli decode <dict.hope>   (bitlen+hex on stdin)\n"
               "       hope_cli stats  <dict.hope> [keys.txt]\n"
               "       hope_cli selftest\n"
               "       hope_cli drift  [scheme] [keys_per_phase] [shards] "
               "[localized|rebalance]\n"
               "       hope_cli serve  [scheme] [keys] [workers] [shards]\n"
               "                       [--stats-file <path>] "
               "[--stats-interval <ms>]\n"
               "       hope_cli version\n"
               "       hope_cli --help\n"
               "schemes: single-char double-char alm 3-grams 4-grams "
               "alm-improved\n"
               "drift: shards in 2..256 selects the sharded demo; mode\n"
               "  localized confines URL drift to one shard (default),\n"
               "  rebalance migrates a hotspot across the key range and\n"
               "  lets the versioned router re-derive its boundaries.\n"
               "serve: concurrent serving-layer demo — workers (max 64)\n"
               "  serve checked op mixes through migration-transparent\n"
               "  reads while rebalances run; nonzero exit on any\n"
               "  consistency failure. --stats-file streams JSON-lines\n"
               "  telemetry snapshots every --stats-interval ms.\n"
               "exit codes: 0 ok, 1 runtime error, 2 usage error\n");
}

int Usage() {
  PrintUsage(stderr);
  return 2;
}

// Shared with the fuzz harness (tests/fuzz/fuzz_parse.cc drives these
// with adversarial tokens): tools/cli_args.h.
using hope::cli::FromHex;
using hope::cli::ParseCount;
using hope::cli::ParseScheme;
using hope::cli::ToHex;

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  return lines;
}

std::unique_ptr<Hope> LoadDict(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::stringstream ss;
  ss << in.rdbuf();
  auto hope = Hope::Deserialize(ss.str());
  if (!hope) {
    std::fprintf(stderr, "%s is not a valid HOPE dictionary\n", path.c_str());
    std::exit(1);
  }
  return hope;
}

int CmdBuild(int argc, char** argv) {
  if (argc < 5) return Usage();
  Scheme scheme;
  if (!ParseScheme(argv[2], &scheme)) return Usage();
  // Validate the cheap argument before the potentially large file read:
  // dict_size went through raw strtoull before this parser existed, so
  // "12x" built a 12-entry dictionary and "-1" a 2^64-entry request.
  size_t dict_size = size_t{1} << 14;
  if (argc > 5 && !ParseCount(argv[5], size_t{1} << 24, &dict_size))
    return Usage();
  auto keys = ReadLines(argv[3]);
  hope::BuildStats stats;
  auto hope = Hope::Build(scheme, keys, dict_size, &stats);
  std::ofstream out(argv[4], std::ios::binary);
  std::string blob = hope->Serialize();
  out.write(blob.data(), static_cast<long>(blob.size()));
  std::fprintf(stderr,
               "built %s dictionary: %zu entries, %zu KB structure, "
               "%.2fs (select %.2fs, assign %.2fs)\n",
               argv[2], stats.num_entries, stats.dict_memory_bytes / 1024,
               stats.TotalSeconds(), stats.symbol_select_seconds,
               stats.code_assign_seconds);
  std::fprintf(stderr, "compression rate on the sample: %.3fx\n",
               hope->CompressionRate(keys));
  return 0;
}

int CmdEncode(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto hope = LoadDict(argv[2]);
  std::string line;
  while (std::getline(std::cin, line)) {
    size_t bits = 0;
    std::string enc = hope->Encode(line, &bits);
    std::printf("%zu %s\n", bits, ToHex(enc).c_str());
  }
  return 0;
}

int CmdDecode(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto hope = LoadDict(argv[2]);
  std::string line;
  while (std::getline(std::cin, line)) {
    size_t space = line.find(' ');
    std::string bytes;
    char* num_end = nullptr;
    size_t bits = std::strtoull(line.c_str(), &num_end, 10);
    if (space == std::string::npos ||
        num_end != line.c_str() + space ||
        !FromHex(line.substr(space + 1), &bytes)) {
      std::fprintf(stderr, "malformed line: %s\n", line.c_str());
      return 1;
    }
    try {
      std::printf("%s\n", hope->Decode(bytes, bits).c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "invalid encoding \"%s\": %s\n", line.c_str(),
                   e.what());
      return 1;
    }
  }
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto hope = LoadDict(argv[2]);
  std::printf("scheme:        %s\n", hope::SchemeName(hope->scheme()));
  std::printf("entries:       %zu\n", hope->dict().NumEntries());
  std::printf("dictionary:    %s, %zu KB\n", hope->dict().Name(),
              hope->dict().MemoryBytes() / 1024);
  if (argc > 3) {
    auto keys = ReadLines(argv[3]);
    std::printf("compression:   %.3fx over %zu keys\n",
                hope->CompressionRate(keys), keys.size());
  }
  return 0;
}

int CmdSelftest() {
  static const Scheme kAll[] = {
      Scheme::kSingleChar, Scheme::kDoubleChar,  Scheme::kAlm,
      Scheme::kThreeGrams, Scheme::kFourGrams,   Scheme::kAlmImproved,
  };
  auto keys = hope::GenerateEmails(300, /*seed=*/11);
  auto urls = hope::GenerateUrls(100, /*seed=*/11);
  keys.insert(keys.end(), urls.begin(), urls.end());
  auto samples = hope::SampleKeys(keys, 0.25);
  int failures = 0;
  for (Scheme scheme : kAll) {
    auto built = Hope::Build(scheme, samples, size_t{1} << 12);
    // Round-trip through the serialized form, like the encode/decode
    // subcommands do.
    auto hope = Hope::Deserialize(built->Serialize());
    if (!hope) {
      std::fprintf(stderr, "FAIL %s: serialize round-trip rejected\n",
                   hope::SchemeName(scheme));
      failures++;
      continue;
    }
    size_t bad = 0;
    for (const std::string& key : keys) {
      size_t bits = 0;
      std::string enc = hope->Encode(key, &bits);
      if (hope->Decode(enc, bits) != key) bad++;
    }
    if (bad) {
      std::fprintf(stderr, "FAIL %s: %zu/%zu keys did not round-trip\n",
                   hope::SchemeName(scheme), bad, keys.size());
      failures++;
    } else {
      std::fprintf(stderr, "ok   %s: %zu keys round-tripped (%.3fx)\n",
                   hope::SchemeName(scheme), keys.size(),
                   hope->CompressionRate(keys));
    }
  }
  return failures ? 1 : 0;
}

// Sharded drift demo: a localized URL drift (one shard's key range
// blends toward query-style URLs, the rest of the keyspace stays
// stable) served through a ShardedDictionaryManager with one shared
// BackgroundRebuilder. Only the drifted shard's epoch should move.
int CmdDriftSharded(Scheme scheme, size_t keys_per_phase, size_t shards) {
  hope::DriftOptions dopt;
  dopt.model = hope::DriftModel::kUrlStyle;
  dopt.num_phases = 5;
  dopt.keys_per_phase = keys_per_phase;
  hope::DriftingWorkload drift(dopt);
  auto phase0 = drift.Phase(0);

  hope::dynamic::ShardedDictionaryManager::Options sopt;
  sopt.num_shards = shards;
  sopt.shard.scheme = scheme;
  sopt.shard.dict_size_limit = size_t{1} << 14;
  sopt.shard.stats.sample_every = 2;
  sopt.shard.stats.ewma_alpha = 0.005;
  sopt.shard.min_cpr_gain = 0.01;
  hope::dynamic::ShardedDictionaryManager mgr(
      hope::SampleKeys(phase0, 0.05), sopt,
      [] { return hope::dynamic::MakeCompressionDropPolicy(0.03, 256); });
  hope::dynamic::BackgroundRebuilder rebuilder(&mgr);

  // Confine the drift to the shard owning the most part-B weight.
  hope::LocalizedDrift localized(drift, mgr);
  const size_t victim = localized.victim();

  std::printf("localized URL drift, %s, %zu shards (victim %zu), "
              "%zu phases x %zu keys\n",
              hope::SchemeName(scheme), mgr.num_shards(), victim,
              drift.num_phases(), keys_per_phase);
  std::printf("%-6s %7s %12s  %s\n", "phase", "B-mix", "sharded-cpr",
              "shard-epochs");
  for (size_t p = 0; p < drift.num_phases(); p++) {
    auto keys = localized.PhaseStream(p, keys_per_phase, dopt.seed);
    for (const auto& k : keys) mgr.Encode(k);
    for (int spin = 0; spin < 100 && mgr.ShouldRebuild(); spin++) {
      rebuilder.Nudge();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    // MeasureShardedCpr probes observer-free clones: measuring through
    // the managed encoders would feed the collectors being demonstrated.
    std::printf("%-6zu %6.0f%% %12.3f  %s\n", p, 100 * drift.MixFraction(p),
                hope::MeasureShardedCpr(mgr, keys),
                hope::EpochsString(mgr.Epochs()).c_str());
    std::fflush(stdout);
  }
  rebuilder.Stop();
  uint64_t victim_epoch = mgr.shard(victim).epoch();
  uint64_t max_other = 0;
  for (size_t s = 0; s < mgr.num_shards(); s++)
    if (s != victim) max_other = std::max(max_other, mgr.shard(s).epoch());
  std::printf("victim shard epoch %llu, other shards' max epoch %llu -> "
              "rebuilds %s\n",
              static_cast<unsigned long long>(victim_epoch),
              static_cast<unsigned long long>(max_other),
              victim_epoch > 0 && max_other == 0 ? "localized"
                                                 : "not localized");
  return 0;
}

// Rebalance demo: a traffic hotspot migrates across the key range while
// a ShardedDictionaryManager re-derives its router boundaries online
// (weight-imbalance policy + versioned router hot-swap). Prints the
// per-phase stream spread (max/mean routed traffic) and router version;
// a fixed-boundary manager would end at spread == shards.
int CmdDriftRebalance(Scheme scheme, size_t keys_per_phase, size_t shards) {
  hope::DriftOptions dopt;
  dopt.model = hope::DriftModel::kHotspotMigrate;
  dopt.num_phases = 5;
  dopt.keys_per_phase = keys_per_phase;
  hope::DriftingWorkload drift(dopt);
  auto phase0 = drift.Phase(0);

  const double threshold = 1.5;
  hope::dynamic::ShardedDictionaryManager::Options sopt;
  sopt.num_shards = shards;
  sopt.shard.scheme = scheme;
  sopt.shard.dict_size_limit = size_t{1} << 14;
  sopt.shard.stats.sample_every = 2;
  sopt.shard.stats.ewma_alpha = 0.005;
  sopt.shard.stats.reservoir_halflife = 512;
  sopt.shard.min_cpr_gain = 0.01;
  sopt.traffic_ewma_alpha = 0.6;
  hope::dynamic::ShardedDictionaryManager mgr(
      hope::SampleKeys(phase0, 0.05), sopt,
      [] { return hope::dynamic::MakeCompressionDropPolicy(0.03, 256); },
      hope::dynamic::MakeWeightImbalancePolicy(
          threshold, /*min_keys=*/keys_per_phase / 2,
          /*cooldown_seconds=*/0.5, /*consecutive_polls=*/2));
  hope::dynamic::BackgroundRebuilder rebuilder(&mgr);

  std::printf("hotspot migration, %s, %zu shards, %zu phases x %zu keys, "
              "imbalance policy %.1fx\n",
              hope::SchemeName(scheme), mgr.num_shards(), drift.num_phases(),
              keys_per_phase, threshold);
  std::printf("%-6s %7s %12s %8s %7s  %s\n", "phase", "B-mix", "sharded-cpr",
              "spread", "rtr-ver", "shard-epochs");
  auto serve = [&](size_t p, const char* label) {
    auto keys = drift.Phase(p);
    for (const auto& k : keys) mgr.Encode(k);
    for (int spin = 0; spin < 30; spin++) {
      rebuilder.Nudge();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    double s = hope::StreamSpread(mgr, keys);
    std::printf("%-6s %6.0f%% %12.3f %8.2f %7llu  %s\n", label,
                100 * drift.MixFraction(p), hope::MeasureShardedCpr(mgr, keys),
                s, static_cast<unsigned long long>(mgr.router_version()),
                hope::EpochsString(mgr.Epochs()).c_str());
    std::fflush(stdout);
    return s;
  };
  for (size_t p = 0; p < drift.num_phases(); p++)
    serve(p, std::to_string(p).c_str());
  // Settle rounds: the blend saturates past the last phase (the hotspot
  // stops moving), so the router gets to converge under the threshold.
  double final_spread =
      hope::StreamSpread(mgr, drift.Phase(drift.num_phases()));
  for (int round = 0; round < 4 && final_spread > threshold; round++)
    final_spread = serve(drift.num_phases(), "settle");
  rebuilder.Stop();
  std::printf("router version %llu, final spread %.2f -> %s\n",
              static_cast<unsigned long long>(mgr.router_version()),
              final_spread,
              mgr.router_version() > 0 && final_spread <= threshold
                  ? "re-balanced"
                  : "not re-balanced");
  return 0;
}

// Demo of the dynamic subsystem: drifting Email workload, static vs
// managed dictionary, background rebuilds, per-phase report.
int CmdDrift(int argc, char** argv) {
  Scheme scheme = Scheme::kDoubleChar;
  if (argc > 2 && !ParseScheme(argv[2], &scheme)) return Usage();
  size_t keys_per_phase = 10000;
  if (argc > 3 && !ParseCount(argv[3], size_t{1} << 32, &keys_per_phase))
    return Usage();
  size_t shards = 1;
  // 256 caps the demo at something a terminal table can show; beyond it
  // (and 0, negatives, junk) is a usage error with exit code 2.
  if (argc > 4 && !ParseCount(argv[4], 256, &shards)) return Usage();
  bool rebalance = false;
  if (argc > 5) {
    if (!std::strcmp(argv[5], "rebalance")) {
      rebalance = true;
    } else if (std::strcmp(argv[5], "localized") != 0) {
      return Usage();
    }
    if (shards < 2) return Usage();  // modes only exist for sharded demos
  }
  if (shards > 1)
    return rebalance ? CmdDriftRebalance(scheme, keys_per_phase, shards)
                     : CmdDriftSharded(scheme, keys_per_phase, shards);

  hope::DriftOptions dopt;
  dopt.num_phases = 5;
  dopt.keys_per_phase = keys_per_phase;
  hope::DriftingWorkload drift(dopt);
  auto phase0 = drift.Phase(0);
  auto sample = hope::SampleKeys(phase0, 0.02);
  const size_t limit = size_t{1} << 14;

  auto static_dict = Hope::Build(scheme, sample, limit);
  hope::dynamic::DictionaryManager::Options mopt;
  mopt.scheme = scheme;
  mopt.dict_size_limit = limit;
  mopt.stats.sample_every = 4;
  hope::dynamic::DictionaryManager mgr(
      static_dict->Clone(), mopt,
      hope::dynamic::MakeCompressionDropPolicy(0.02, 1024), phase0);
  hope::dynamic::BackgroundRebuilder rebuilder(&mgr);

  std::printf("drifting Email workload, %s, %zu phases x %zu keys\n",
              hope::SchemeName(scheme), drift.num_phases(), keys_per_phase);
  std::printf("%-6s %7s %12s %12s %8s\n", "phase", "B-mix", "static-cpr",
              "managed-cpr", "epoch");
  for (size_t p = 0; p < drift.num_phases(); p++) {
    auto keys = drift.Phase(p);
    for (const auto& k : keys) mgr.Encode(k);
    for (int spin = 0; spin < 100 && mgr.ShouldRebuild(); spin++) {
      rebuilder.Nudge();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    // Observer-free clone: measuring through the managed encoder would
    // feed the stats collector and skew the policy being demonstrated.
    auto clone = mgr.Acquire().hope->Clone();
    double static_cpr = static_dict->CompressionRate(keys);
    double managed_cpr = clone->CompressionRate(keys);
    std::printf("%-6zu %6.0f%% %12.3f %12.3f %8llu\n", p,
                100 * drift.MixFraction(p), static_cpr, managed_cpr,
                static_cast<unsigned long long>(mgr.epoch()));
    std::fflush(stdout);
  }
  rebuilder.Stop();
  std::printf("rebuilds published: %llu, rejected: %llu\n",
              static_cast<unsigned long long>(mgr.rebuilds_published()),
              static_cast<unsigned long long>(mgr.rebuilds_rejected()));
  return 0;
}

// Serving demo: N workers (pinned where the OS allows) serve checked
// lookup/insert/scan mixes from a ConcurrentShardedIndex while a
// migrating hotspot forces online rebalances underneath; per phase,
// prints end-to-end latency percentiles, throughput, and the
// correctness counters (which must stay zero for exit code 0).
int CmdServe(int argc, char** argv) {
  // Flags may mix with the positionals: serve [scheme] [keys] [workers]
  // [shards] [--stats-file <path>] [--stats-interval <ms>]. The grammar
  // lives in tools/cli_args.h so the fuzz harness exercises exactly the
  // code that runs here.
  hope::cli::ServeArgs serve_args;
  if (!hope::cli::ParseServeArgs(std::vector<std::string>(argv + 2, argv + argc),
                                 &serve_args))
    return Usage();
  const Scheme scheme = serve_args.scheme;
  const size_t num_keys = serve_args.num_keys;
  const size_t workers = serve_args.workers;
  const size_t shards = serve_args.shards;
  const std::string stats_file = serve_args.stats_file;
  const size_t stats_interval_ms = serve_args.stats_interval_ms;

  using hope::serve::ConcurrentShardedIndex;
  using hope::serve::KeyFingerprint;
  using hope::serve::OpStats;
  using hope::serve::Request;
  using hope::serve::ServerLoop;

  hope::DriftOptions dopt;
  dopt.model = hope::DriftModel::kHotspotMigrate;
  dopt.num_phases = 5;
  dopt.keys_per_phase = num_keys;
  dopt.corpus_size = num_keys;
  hope::DriftingWorkload drift(dopt);
  std::vector<std::string> corpus = drift.part_a();
  corpus.insert(corpus.end(), drift.part_b().begin(), drift.part_b().end());

  hope::dynamic::ShardedDictionaryManager::Options sopt;
  sopt.num_shards = shards;
  sopt.shard.scheme = scheme;
  // The limit only binds the variable-interval schemes (Single-/Double-
  // Char dictionaries are fixed-size); 4K keeps their builds short so
  // the background worker turns cycles quickly during the demo.
  sopt.shard.dict_size_limit = size_t{1} << 12;
  sopt.shard.stats.sample_every = 2;
  sopt.shard.stats.ewma_alpha = 0.005;
  sopt.shard.stats.reservoir_halflife = 512;
  sopt.shard.min_cpr_gain = 0.01;
  sopt.traffic_ewma_alpha = 0.6;
  // Telemetry sinks outlive everything they're attached to (managers,
  // rebuilder, index, loop — all declared below them).
  hope::telemetry::MetricRegistry registry;
  hope::telemetry::TraceLog trace;

  hope::dynamic::ShardedDictionaryManager mgr(
      hope::SampleKeys(corpus, 0.05), sopt,
      [] { return hope::dynamic::MakeCompressionDropPolicy(0.03, 256); },
      hope::dynamic::MakeWeightImbalancePolicy(
          /*trigger_ratio=*/1.5, /*min_keys=*/num_keys / 2,
          /*cooldown_seconds=*/0.2, /*consecutive_polls=*/2));
  mgr.AttachTelemetry(&registry, &trace);
  hope::dynamic::BackgroundRebuilder rebuilder(&mgr);
  rebuilder.AttachTelemetry(&registry);

  ConcurrentShardedIndex<hope::BTree> index(&mgr);
  index.AttachTelemetry(&registry, &trace);
  for (const auto& k : corpus) index.Insert(k, KeyFingerprint(k));

  std::ofstream stats_out;
  ServerLoop<hope::BTree>::Options lopt;
  lopt.num_workers = workers;
  lopt.registry = &registry;
  if (!stats_file.empty()) {
    stats_out.open(stats_file, std::ios::trunc);
    if (!stats_out) {
      std::fprintf(stderr, "cannot open %s\n", stats_file.c_str());
      return 1;
    }
    lopt.stats_interval = std::chrono::milliseconds(stats_interval_ms);
    // Only the loop's stats thread writes (one JSON object per line,
    // flushed so a tail -f mid-run sees whole lines).
    lopt.stats_sink =
        [&stats_out](const hope::telemetry::RegistrySnapshot& snap) {
          stats_out << snap.ToJson() << '\n';
          stats_out.flush();
        };
  }
  ServerLoop<hope::BTree> loop(&index, lopt);

  std::printf("serving demo, %s, %zu keys, %zu workers (%zu pinned), "
              "%zu shards\n",
              hope::SchemeName(scheme), corpus.size(), loop.num_workers(),
              loop.workers_pinned(), mgr.num_shards());
  std::printf("%-14s %-7s %9s %9s %9s %9s %11s %5s\n", "phase", "op", "ops",
              "p50-us", "p99-us", "p999-us", "ops/sec", "fail");

  uint64_t total_failures = 0;
  auto run_phase = [&](const char* name, size_t phase, double write_frac,
                       double scan_frac) {
    auto stream = drift.Phase(phase);
    loop.ResetStats();
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < stream.size(); i++) {
      Request req;
      req.key = stream[i];
      const double roll =
          static_cast<double>(i % 1000) / 1000.0;  // deterministic mix
      if (roll < scan_frac) {
        req.op = Request::Op::kScan;
        req.check = true;
        req.scan_count = 50;
      } else if (roll < scan_frac + write_frac) {
        req.op = Request::Op::kInsert;
        req.value = KeyFingerprint(req.key);
      } else {
        req.op = Request::Op::kLookup;
        req.check = true;
      }
      loop.Submit(std::move(req));
    }
    loop.WaitIdle();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    static const char* kOpNames[] = {"lookup", "insert", "erase", "scan"};
    for (size_t op = 0; op < Request::kNumOps; op++) {
      OpStats s = loop.Snapshot(static_cast<Request::Op>(op));
      if (s.ops == 0) continue;
      const uint64_t failures = s.check_failures + s.scan_order_violations;
      total_failures += failures;
      std::printf("%-14s %-7s %9llu %9.1f %9.1f %9.1f %11.0f %5llu\n", name,
                  kOpNames[op], static_cast<unsigned long long>(s.ops),
                  static_cast<double>(s.latency.Percentile(0.50)) / 1000.0,
                  static_cast<double>(s.latency.Percentile(0.99)) / 1000.0,
                  static_cast<double>(s.latency.Percentile(0.999)) / 1000.0,
                  static_cast<double>(s.ops) / secs,
                  static_cast<unsigned long long>(failures));
    }
    std::fflush(stdout);
  };

  run_phase("read-heavy", 0, /*write_frac=*/0.05, /*scan_frac=*/0.01);
  run_phase("write-heavy", 0, /*write_frac=*/0.50, /*scan_frac=*/0.01);
  // Drift phases migrate the hotspot; the rebalancer chases it while
  // the loop's maintenance thread applies the plans.
  for (size_t p = 0; p < drift.num_phases(); p++) {
    run_phase(p + 1 == drift.num_phases() ? "drift(last)" : "drift", p,
              /*write_frac=*/0.10, /*scan_frac=*/0.005);
    // The policy wants sustained imbalance across consecutive polls
    // past its cooldown, and the background worker can be parked inside
    // a multi-second dictionary build (Double-Char's fixed 2^16-symbol
    // Hu-Tucker takes ~1.4s regardless of the size limit), so poll the
    // router directly here instead of waiting for the worker's cycle.
    // Published plans apply under live traffic: the loop's maintenance
    // thread migrates keys while the next phase's requests stream in.
    rebuilder.Nudge();
    for (int spin = 0; spin < 15; spin++) {
      mgr.PollRebalance();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  loop.Stop();
  rebuilder.Stop();
  std::printf("rebalances published %llu, plans applied %llu, entries "
              "migrated %llu, reader slow paths %llu -> %s\n",
              static_cast<unsigned long long>(mgr.rebalances_published()),
              static_cast<unsigned long long>(index.plans_applied()),
              static_cast<unsigned long long>(index.entries_migrated()),
              static_cast<unsigned long long>(index.lookup_slow_paths()),
              total_failures == 0 ? "consistent" : "INCONSISTENT");
  return total_failures == 0 ? 0 : 1;
}

int CmdVersion() {
  std::printf("hope %s\n", hope::kVersion);
  std::printf("dynamic: sharded dictionary manager (per-key-range shards, "
              "independent epochs),\n"
              "         online shard re-balancing (versioned router, "
              "weight-imbalance policy,\n"
              "         cross-shard key migration), versioned + sharded "
              "index, shared\n"
              "         background rebuilder\n"
              "serve:   concurrent sharded index (EBR-routed "
              "double-routed reads,\n"
              "         batched migration), shared-nothing worker loop, "
              "HDR-style\n"
              "         latency histograms\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (!std::strcmp(argv[1], "--help") || !std::strcmp(argv[1], "help")) {
    PrintUsage(stdout);
    return 0;
  }
  if (!std::strcmp(argv[1], "build")) return CmdBuild(argc, argv);
  if (!std::strcmp(argv[1], "encode")) return CmdEncode(argc, argv);
  if (!std::strcmp(argv[1], "decode")) return CmdDecode(argc, argv);
  if (!std::strcmp(argv[1], "stats")) return CmdStats(argc, argv);
  if (!std::strcmp(argv[1], "selftest")) return CmdSelftest();
  if (!std::strcmp(argv[1], "drift")) return CmdDrift(argc, argv);
  if (!std::strcmp(argv[1], "serve")) return CmdServe(argc, argv);
  if (!std::strcmp(argv[1], "version")) return CmdVersion();
  return Usage();
}
