// hope_cli — command-line front end for the HOPE encoder.
//
//   hope_cli build  <scheme> <keys.txt> <dict.hope> [dict_size]
//       Builds a dictionary from newline-separated sample keys and saves
//       it (schemes: single-char double-char alm 3-grams 4-grams
//       alm-improved).
//   hope_cli encode <dict.hope>
//       Reads keys from stdin, writes "<bitlen> <hex-encoding>" lines.
//   hope_cli decode <dict.hope>
//       Reads "<bitlen> <hex-encoding>" lines, writes the original keys.
//   hope_cli stats  <dict.hope> [keys.txt]
//       Prints dictionary statistics and, given keys, the compression
//       rate achieved on them.
//   hope_cli selftest
//       Builds every scheme on a synthetic sample, round-trips
//       encode/decode (including through serialize/deserialize), and
//       exits non-zero on any mismatch. Used as the CI smoke test.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "datasets/datasets.h"
#include "hope/hope.h"

namespace {

using hope::Hope;
using hope::Scheme;

int Usage() {
  std::fprintf(stderr,
               "usage: hope_cli build <scheme> <keys.txt> <dict.hope> "
               "[dict_size]\n"
               "       hope_cli encode <dict.hope>   (keys on stdin)\n"
               "       hope_cli decode <dict.hope>   (bitlen+hex on stdin)\n"
               "       hope_cli stats  <dict.hope> [keys.txt]\n"
               "       hope_cli selftest\n"
               "schemes: single-char double-char alm 3-grams 4-grams "
               "alm-improved\n");
  return 2;
}

bool ParseScheme(const std::string& name, Scheme* out) {
  static const std::pair<const char*, Scheme> kMap[] = {
      {"single-char", Scheme::kSingleChar},
      {"double-char", Scheme::kDoubleChar},
      {"alm", Scheme::kAlm},
      {"3-grams", Scheme::kThreeGrams},
      {"4-grams", Scheme::kFourGrams},
      {"alm-improved", Scheme::kAlmImproved},
  };
  for (auto& [n, s] : kMap)
    if (name == n) {
      *out = s;
      return true;
    }
  return false;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  return lines;
}

std::unique_ptr<Hope> LoadDict(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::stringstream ss;
  ss << in.rdbuf();
  auto hope = Hope::Deserialize(ss.str());
  if (!hope) {
    std::fprintf(stderr, "%s is not a valid HOPE dictionary\n", path.c_str());
    std::exit(1);
  }
  return hope;
}

std::string ToHex(const std::string& bytes) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xF]);
  }
  return out;
}

bool FromHex(const std::string& hex, std::string* bytes) {
  if (hex.size() % 2) return false;
  bytes->clear();
  auto nib = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = nib(hex[i]), lo = nib(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    bytes->push_back(static_cast<char>(hi * 16 + lo));
  }
  return true;
}

int CmdBuild(int argc, char** argv) {
  if (argc < 5) return Usage();
  Scheme scheme;
  if (!ParseScheme(argv[2], &scheme)) return Usage();
  auto keys = ReadLines(argv[3]);
  size_t dict_size = argc > 5 ? std::strtoull(argv[5], nullptr, 10)
                              : size_t{1} << 14;
  hope::BuildStats stats;
  auto hope = Hope::Build(scheme, keys, dict_size, &stats);
  std::ofstream out(argv[4], std::ios::binary);
  std::string blob = hope->Serialize();
  out.write(blob.data(), static_cast<long>(blob.size()));
  std::fprintf(stderr,
               "built %s dictionary: %zu entries, %zu KB structure, "
               "%.2fs (select %.2fs, assign %.2fs)\n",
               argv[2], stats.num_entries, stats.dict_memory_bytes / 1024,
               stats.TotalSeconds(), stats.symbol_select_seconds,
               stats.code_assign_seconds);
  std::fprintf(stderr, "compression rate on the sample: %.3fx\n",
               hope->CompressionRate(keys));
  return 0;
}

int CmdEncode(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto hope = LoadDict(argv[2]);
  std::string line;
  while (std::getline(std::cin, line)) {
    size_t bits = 0;
    std::string enc = hope->Encode(line, &bits);
    std::printf("%zu %s\n", bits, ToHex(enc).c_str());
  }
  return 0;
}

int CmdDecode(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto hope = LoadDict(argv[2]);
  std::string line;
  while (std::getline(std::cin, line)) {
    size_t space = line.find(' ');
    std::string bytes;
    char* num_end = nullptr;
    size_t bits = std::strtoull(line.c_str(), &num_end, 10);
    if (space == std::string::npos ||
        num_end != line.c_str() + space ||
        !FromHex(line.substr(space + 1), &bytes)) {
      std::fprintf(stderr, "malformed line: %s\n", line.c_str());
      return 1;
    }
    try {
      std::printf("%s\n", hope->Decode(bytes, bits).c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "invalid encoding \"%s\": %s\n", line.c_str(),
                   e.what());
      return 1;
    }
  }
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto hope = LoadDict(argv[2]);
  std::printf("scheme:        %s\n", hope::SchemeName(hope->scheme()));
  std::printf("entries:       %zu\n", hope->dict().NumEntries());
  std::printf("dictionary:    %s, %zu KB\n", hope->dict().Name(),
              hope->dict().MemoryBytes() / 1024);
  if (argc > 3) {
    auto keys = ReadLines(argv[3]);
    std::printf("compression:   %.3fx over %zu keys\n",
                hope->CompressionRate(keys), keys.size());
  }
  return 0;
}

int CmdSelftest() {
  static const Scheme kAll[] = {
      Scheme::kSingleChar, Scheme::kDoubleChar,  Scheme::kAlm,
      Scheme::kThreeGrams, Scheme::kFourGrams,   Scheme::kAlmImproved,
  };
  auto keys = hope::GenerateEmails(300, /*seed=*/11);
  auto urls = hope::GenerateUrls(100, /*seed=*/11);
  keys.insert(keys.end(), urls.begin(), urls.end());
  auto samples = hope::SampleKeys(keys, 0.25);
  int failures = 0;
  for (Scheme scheme : kAll) {
    auto built = Hope::Build(scheme, samples, size_t{1} << 12);
    // Round-trip through the serialized form, like the encode/decode
    // subcommands do.
    auto hope = Hope::Deserialize(built->Serialize());
    if (!hope) {
      std::fprintf(stderr, "FAIL %s: serialize round-trip rejected\n",
                   hope::SchemeName(scheme));
      failures++;
      continue;
    }
    size_t bad = 0;
    for (const std::string& key : keys) {
      size_t bits = 0;
      std::string enc = hope->Encode(key, &bits);
      if (hope->Decode(enc, bits) != key) bad++;
    }
    if (bad) {
      std::fprintf(stderr, "FAIL %s: %zu/%zu keys did not round-trip\n",
                   hope::SchemeName(scheme), bad, keys.size());
      failures++;
    } else {
      std::fprintf(stderr, "ok   %s: %zu keys round-tripped (%.3fx)\n",
                   hope::SchemeName(scheme), keys.size(),
                   hope->CompressionRate(keys));
    }
  }
  return failures ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (!std::strcmp(argv[1], "build")) return CmdBuild(argc, argv);
  if (!std::strcmp(argv[1], "encode")) return CmdEncode(argc, argv);
  if (!std::strcmp(argv[1], "decode")) return CmdDecode(argc, argv);
  if (!std::strcmp(argv[1], "stats")) return CmdStats(argc, argv);
  if (!std::strcmp(argv[1], "selftest")) return CmdSelftest();
  return Usage();
}
