// Argument-parsing surface of hope_cli, split out so the fuzz harness
// can drive it directly (tests/fuzz/fuzz_parse.cc): every function here
// consumes attacker-controlled argv/stdin tokens and must reject, never
// crash or wrap. hope_cli.cc is the only other consumer.
//
// Contracts (pinned by tools/cli_validation_test.sh and the fuzzer):
//   - counts are digits-only, in [1, max] — no sign, whitespace, or
//     trailing junk (common/parse.h rules);
//   - scheme names come from the fixed six-entry table;
//   - hex round-trips: FromHex accepts exactly the lowercase output of
//     ToHex;
//   - serve flags may interleave with positionals, and every rejection
//     leaves the output struct untouched semantics-free (usage exit 2).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/parse.h"
#include "hope/hope.h"

namespace hope::cli {

inline bool ParseScheme(const std::string& name, Scheme* out) {
  static const std::pair<const char*, Scheme> kMap[] = {
      {"single-char", Scheme::kSingleChar},
      {"double-char", Scheme::kDoubleChar},
      {"alm", Scheme::kAlm},
      {"3-grams", Scheme::kThreeGrams},
      {"4-grams", Scheme::kFourGrams},
      {"alm-improved", Scheme::kAlmImproved},
  };
  for (auto& [n, s] : kMap)
    if (name == n) {
      *out = s;
      return true;
    }
  return false;
}

// Digits-only count parsing, same contract as HOPE_BENCH_KEYS
// (common/parse.h): raw strtoull would additionally accept " 7" and
// "+7", wrap negatives, and saturate on overflow — all usage errors
// here (documented exit-code contract: usage = 2).
inline bool ParseCount(const char* arg, size_t max, size_t* out) {
  unsigned long long v = 0;
  if (!hope::ParsePositiveUint(arg, max, &v)) return false;
  *out = static_cast<size_t>(v);
  return true;
}

inline std::string ToHex(const std::string& bytes) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xF]);
  }
  return out;
}

inline bool FromHex(const std::string& hex, std::string* bytes) {
  if (hex.size() % 2) return false;
  bytes->clear();
  auto nib = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = nib(hex[i]), lo = nib(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    bytes->push_back(static_cast<char>(hi * 16 + lo));
  }
  return true;
}

/// Parsed `hope_cli serve` arguments with their documented defaults.
struct ServeArgs {
  Scheme scheme = Scheme::kDoubleChar;
  size_t num_keys = 20000;
  size_t workers = 4;
  size_t shards = 4;
  std::string stats_file;
  size_t stats_interval_ms = 200;
};

/// Parses everything after `hope_cli serve` — flags may mix with the
/// positionals: [scheme] [keys] [workers] [shards]
/// [--stats-file <path>] [--stats-interval <ms>]. Returns false on any
/// usage error; *out may hold partial values then (the caller exits).
inline bool ParseServeArgs(const std::vector<std::string>& args,
                           ServeArgs* out) {
  std::vector<const std::string*> pos;
  for (size_t i = 0; i < args.size(); i++) {
    const std::string& arg = args[i];
    if (arg == "--stats-file") {
      if (i + 1 >= args.size()) return false;
      out->stats_file = args[++i];
    } else if (arg == "--stats-interval") {
      if (i + 1 >= args.size() ||
          !ParseCount(args[i + 1].c_str(), 3600 * 1000,
                      &out->stats_interval_ms))
        return false;
      i++;
    } else if (!arg.empty() && arg[0] == '-') {
      return false;
    } else {
      pos.push_back(&arg);
    }
  }
  if (pos.size() > 4) return false;
  if (pos.size() > 0 && !ParseScheme(*pos[0], &out->scheme)) return false;
  if (pos.size() > 1 &&
      !ParseCount(pos[1]->c_str(), size_t{1} << 32, &out->num_keys))
    return false;
  if (pos.size() > 2 && !ParseCount(pos[2]->c_str(), 64, &out->workers))
    return false;
  // Same bounds contract as drift: 2..256 shards, digits only.
  if (pos.size() > 3 && !ParseCount(pos[3]->c_str(), 256, &out->shards))
    return false;
  if (out->shards < 2) return false;
  return true;
}

}  // namespace hope::cli
