#!/usr/bin/env bash
# Time-boxed libFuzzer session over every fuzz target, with corpus
# minimization back into the committed seeds.
#
#   tools/run_fuzz.sh <build-dir> [seconds-per-target]
#
# <build-dir> must be configured with -DHOPE_FUZZ=ON (Clang; pair with
# -DHOPE_SANITIZE=ON so findings carry ASan/UBSan reports). Each target
# runs for the time box (default 60s) seeded from the committed corpus
# plus any accumulated work corpus under <build-dir>/fuzz-work/, then a
# -merge=1 pass minimizes the union into the work corpus. Promote
# interesting work-corpus files into tests/fuzz/corpus/<target>/ by
# copying them and committing (they become replay regression tests).
#
# Exit: 0 all targets completed their box with no crash, 1 a target
# found a crash (artifacts under <build-dir>/fuzz-work/<target>/), 2
# usage/environment.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-}"
time_box="${2:-60}"
if [[ -z "$build_dir" || ! -d "$build_dir" ]]; then
  echo "usage: run_fuzz.sh <build-dir> [seconds-per-target]" >&2
  exit 2
fi

targets=()
for t in "$build_dir"/tests/fuzz/fuzz_*; do
  [[ -x "$t" && ! "$t" == *_replay ]] && targets+=("$t")
done
if [[ "${#targets[@]}" -eq 0 ]]; then
  echo "run_fuzz: no libFuzzer binaries under $build_dir/tests/fuzz" \
       "(configure with -DHOPE_FUZZ=ON, Clang only)" >&2
  exit 2
fi

status=0
for bin in "${targets[@]}"; do
  name="$(basename "$bin")"
  seeds="$repo_root/tests/fuzz/corpus/$name"
  work="$build_dir/fuzz-work/$name"
  mkdir -p "$work/corpus"

  echo "=== $name: ${time_box}s (seeds: $seeds) ==="
  # Crash artifacts land in the work dir, not the repo.
  if ! "$bin" -max_total_time="$time_box" -rss_limit_mb=2048 \
       -print_final_stats=1 -artifact_prefix="$work/" \
       "$work/corpus" "$seeds"; then
    echo "run_fuzz: $name FOUND A CRASH — artifacts in $work/" >&2
    status=1
    continue
  fi
  # Minimize the accumulated corpus in place (union of work + seeds).
  merged="$work/corpus.min"
  rm -rf "$merged" && mkdir -p "$merged"
  "$bin" -merge=1 "$merged" "$work/corpus" "$seeds" >/dev/null 2>&1 || true
  rm -rf "$work/corpus" && mv "$merged" "$work/corpus"
  echo "$name: minimized work corpus: $(ls "$work/corpus" | wc -l) files"
done
exit "$status"
