#!/usr/bin/env bash
# Line-coverage report with a floor gate on the untrusted-input files.
#
#   tools/coverage_report.sh <build-dir> [floor-pct]
#
# <build-dir> must be configured with -DHOPE_COVERAGE=ON. Runs the ctest
# suite to produce profiles, then reports per-file line coverage:
#   * Clang builds: llvm-profdata merge + llvm-cov export
#   * gcc builds:   gcov --json-format over the .gcda files
# The gate: every file on the untrusted-input list (the surfaces that
# parse bytes an attacker controls) must reach the floor (default 80%
# of lines). Overall numbers are informational; the floor is the CI
# contract — fuzz targets and unit tests together must actually reach
# the validation branches they claim to cover.
#
# Exit: 0 floor met, 1 a gated file is below the floor, 2 usage/env.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-}"
floor="${2:-80}"
if [[ -z "$build_dir" || ! -d "$build_dir" ]]; then
  echo "usage: coverage_report.sh <build-dir> [floor-pct]" >&2
  exit 2
fi

# The gated surfaces: blob deserialization, code-trie construction and
# decode, the rank/select structure with always-on bounds contracts, and
# the CLI/env parsers.
gated=(
  "src/hope/hope.cc"
  "src/hope/decoder.cc"
  "src/common/bitvector.cc"
)

cd "$build_dir" || exit 2

compiler_is_clang=0
if grep -qs "CMAKE_CXX_COMPILER_ID:INTERNAL=Clang" CMakeCache.txt ||
   grep -qs 'CMAKE_CXX_COMPILER:FILEPATH=.*clang' CMakeCache.txt; then
  compiler_is_clang=1
fi

json="$build_dir/coverage.json"
if [[ "$compiler_is_clang" -eq 1 ]]; then
  command -v llvm-profdata >/dev/null || { echo "llvm-profdata missing" >&2; exit 2; }
  command -v llvm-cov >/dev/null || { echo "llvm-cov missing" >&2; exit 2; }
  export LLVM_PROFILE_FILE="$build_dir/profiles/%p-%m.profraw"
  mkdir -p "$build_dir/profiles"
  ctest --output-on-failure -j "$(nproc)" >/dev/null || {
    echo "coverage_report: ctest failed" >&2; exit 2; }
  llvm-profdata merge -sparse "$build_dir"/profiles/*.profraw \
    -o "$build_dir/coverage.profdata" || exit 2
  # Any instrumented test binary maps the library code; use them all as
  # -object args so tool/CLI-only lines are attributed too.
  objects=()
  while IFS= read -r bin; do objects+=("-object" "$bin"); done \
    < <(find tests tools -maxdepth 3 -type f -executable \
          -name '*test*' -o -type f -executable -name 'hope_cli' \
          2>/dev/null | head -40)
  llvm-cov export "${objects[@]}" \
    -instr-profile="$build_dir/coverage.profdata" \
    -summary-only > "$json" || exit 2
  python3 "$repo_root/tools/coverage_gate.py" \
    --format llvm "$json" --floor "$floor" --repo-root "$repo_root" \
    "${gated[@]}"
else
  command -v gcov >/dev/null || { echo "gcov missing" >&2; exit 2; }
  ctest --output-on-failure -j "$(nproc)" >/dev/null || {
    echo "coverage_report: ctest failed" >&2; exit 2; }
  # gcov --json-format drops one .gcov.json.gz per source next to cwd;
  # collect them in a scratch dir.
  scratch="$build_dir/gcov-json"
  rm -rf "$scratch" && mkdir -p "$scratch"
  ( cd "$scratch" &&
    find "$build_dir" -name '*.gcda' -print0 |
      xargs -0 -r gcov --json-format --branch-probabilities \
        >/dev/null 2>&1 )
  python3 "$repo_root/tools/coverage_gate.py" \
    --format gcov "$scratch" --floor "$floor" --repo-root "$repo_root" \
    "${gated[@]}"
fi
